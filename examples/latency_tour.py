#!/usr/bin/env python3
"""A tour of the tail-latency observability stack.

Three fixed-seed scenarios exercise the latency pillar end to end --
streaming quantile sketches per operation class, per-phase critical-path
decomposition, percentile-band attribution, and SLO burn tracking:

1. **quorum-reads-under-lag** (the ``telemetry_tour`` scenario) with the
   latency tracker and an SLO probe attached.  The same run repeats
   bare; the kernel fingerprints *and* the merged global-clock histories
   must be byte-identical -- latency tracking is pure observation.  The
   ``run_report()`` must carry the "-- latency --" section with
   per-class p50/p90/p99/p999 and a per-band phase breakdown, and the
   "-- slo --" section with error-budget accounting.

2. **inflated forward hop**: the same cluster with ``write_ingress=
   "nearest"`` and a deliberately slow ``forward_latency``.  Critical-
   path attribution must *name the culprit*: the p99+ band of forwarded
   writes spends most of its time in the ``forward-hop`` phase.

3. **freeze-heavy failover**: a primary-routed cluster whose primary
   pool dies mid-run with a long detection delay, so reads park in the
   failover freeze.  Attribution must blame ``freeze-wait`` for the
   slow reads' tail.

Exits non-zero if any check fails, so the CI smoke job doubles as the
latency stack's correctness gate.

Run with:  PYTHONPATH=src python examples/latency_tour.py [--out DIR]
"""

from __future__ import annotations

import argparse
import json
import tempfile
from pathlib import Path

from repro import ClusterSimulation, LDSConfig, ReplicationConfig, Telemetry
from repro.sim import quorum_reads_under_lag

SEED = 7
KEYS = [f"obj-{i}" for i in range(16)]
POOLS = [f"pool-{i}" for i in range(4)]
REPLICATION_LAG = 400.0
SLO_INTERVAL = 50.0


def build(telemetry) -> ClusterSimulation:
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, POOLS, seed=SEED,
        writers_per_shard=2, readers_per_shard=2,
        replication=ReplicationConfig(r=3, replication_lag=REPLICATION_LAG,
                                      read_quorum=2,
                                      write_ingress="nearest"),
        read_policy="quorum",
        telemetry=telemetry,
    )
    simulation.ensure_shards(KEYS)
    simulation.apply(quorum_reads_under_lag(KEYS, seed=SEED))
    return simulation


def forward_hop_scenario():
    """Writes enter at the nearest pool and pay a deliberately slow
    forward hop to the primary: the tail's culprit is the hop."""
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    telemetry = Telemetry(latency=True)
    simulation = ClusterSimulation(
        config, POOLS, seed=SEED,
        replication=ReplicationConfig(r=3, replication_lag=30.0,
                                      forward_latency=150.0,
                                      write_ingress="nearest"),
        read_policy="round-robin",
        telemetry=telemetry,
    )
    simulation.ensure_shards(KEYS)
    for index, key in enumerate(KEYS):
        simulation.invoke_write(key, b"hop", at=float(index) * 5.0)
    simulation.run_until_idle()
    return telemetry.latency


def freeze_wait_scenario():
    """Kill the primary pool under primary-routed reads with a long
    detection delay: the slow reads' tail is the failover freeze."""
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    telemetry = Telemetry(latency=True)
    simulation = ClusterSimulation(
        config, POOLS, seed=3,
        readers_per_shard=3,
        replication=ReplicationConfig(r=3, replication_lag=25.0,
                                      failover_detection_delay=120.0),
        read_policy="primary",
        telemetry=telemetry,
    )
    key = "frozen-key"
    simulation.ensure_shards([key])
    simulation.cluster.write(key, b"v1")
    simulation.run_until_idle()
    group = simulation.replicas.groups[key]
    simulation.cluster.fail_pool(group.primary_pool,
                                 time=simulation.kernel.now)
    for reader in range(3):
        simulation.cluster.router.invoke_read(key, reader=reader,
                                              session=f"r{reader}")
    simulation.run_until_idle()
    return telemetry.latency


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for ops.jsonl / slo.jsonl / "
                             "report.txt (default: a temp dir)")
    args = parser.parse_args()
    out = args.out if args.out is not None else \
        Path(tempfile.mkdtemp(prefix="latency-tour-"))
    out.mkdir(parents=True, exist_ok=True)

    failures = []

    # -- 1. the instrumented run vs the bare run ---------------------------------
    telemetry = Telemetry(trace=True, latency=True, slo_interval=SLO_INTERVAL)
    simulation = build(telemetry)
    print(f"cluster: {simulation.describe()}\n")

    bare = build(None)
    fingerprints_match = \
        simulation.kernel.fingerprint == bare.kernel.fingerprint
    histories_match = repr(simulation.history().operations) == \
        repr(bare.history().operations)
    print("== non-interference ==")
    print(f"  instrumented fingerprint: {simulation.kernel.fingerprint:#010x}")
    print(f"  bare fingerprint:         {bare.kernel.fingerprint:#010x}")
    print(f"  fingerprints identical: {fingerprints_match}")
    print(f"  histories identical:    {histories_match}")
    if not fingerprints_match:
        failures.append("latency tracking perturbed the run "
                        "(fingerprint mismatch)")
    if not histories_match:
        failures.append("latency tracking perturbed the merged history")

    tracker = telemetry.latency
    print("\n== per-class tails ==")
    for op_class, row in tracker.summary().items():
        print(f"  {op_class}: n={row['count']} p50={row['p50']:.1f} "
              f"p99={row['p99']:.1f} p999={row['p999']:.1f} "
              f"p99+ phase={row['dominant_p99_phase']}")
    if not tracker.records:
        failures.append("the latency tracker recorded no operations")
    if tracker.open_count():
        failures.append(f"{tracker.open_count()} operations never closed")

    slo = telemetry.slo
    print("\n== slo ==")
    for op_class, status in slo.snapshot().items():
        print(f"  {op_class}: ops={status.ops} breaches={status.breaches} "
              f"budget={status.budget_consumed:.2f} "
              f"burn={status.burn_rate:.2f}x")
    if not slo.samples:
        failures.append("the SLO probe never sampled")

    report = simulation.run_report()
    for marker in ("-- latency", "-- slo --", "p999"):
        if marker not in report:
            failures.append(f"run_report() is missing {marker!r}")

    # -- 2. attribution names the inflated forward hop ---------------------------
    print("\n== attribution: inflated forward hop ==")
    hop_tracker = forward_hop_scenario()
    hop_attr = hop_tracker.attribution("forwarded-write")
    print(f"  forwarded-write p99+ band ({hop_attr.ops} op(s), "
          f"threshold {hop_attr.threshold:.1f}):")
    for phase, fraction in hop_attr.fractions.items():
        print(f"    {phase}: {fraction:.0%}")
    if hop_attr.dominant_phase != "forward-hop":
        failures.append(
            "expected forward-hop to dominate the forwarded-write tail, "
            f"got {hop_attr.dominant_phase!r}")

    # -- 3. attribution names the failover freeze --------------------------------
    print("\n== attribution: failover freeze ==")
    freeze_tracker = freeze_wait_scenario()
    freeze_attr = freeze_tracker.attribution("protocol-read")
    print(f"  protocol-read p99+ band ({freeze_attr.ops} op(s), "
          f"threshold {freeze_attr.threshold:.1f}):")
    for phase, fraction in freeze_attr.fractions.items():
        print(f"    {phase}: {fraction:.0%}")
    if freeze_attr.dominant_phase != "freeze-wait":
        failures.append(
            "expected freeze-wait to dominate the deferred-read tail, "
            f"got {freeze_attr.dominant_phase!r}")

    # -- artefacts ---------------------------------------------------------------
    ops_path = out / "ops.jsonl"
    slo_path = out / "slo.jsonl"
    report_path = out / "report.txt"
    tracker.write_jsonl(ops_path)
    slo.write_jsonl(slo_path)
    report_path.write_text(report + "\n", encoding="utf-8")
    with open(ops_path, "r", encoding="utf-8") as fh:
        rows = [json.loads(line) for line in fh]
    if len(rows) != len(tracker.records):
        failures.append("ops.jsonl row count does not match the tracker")

    print(f"\n{report}")
    print("\n== artefacts ==")
    print(f"  ops:    {ops_path}")
    print(f"  slo:    {slo_path}")
    print(f"  report: {report_path}")

    if failures:
        print("\nFAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall latency-tour checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
