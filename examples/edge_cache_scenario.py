#!/usr/bin/env python3
"""Edge-cache scenario: a hot object under concurrent writes and reads.

This is the workload the paper's introduction motivates: clients sit close
to the edge layer (tau1 = 1), the back-end is far away (tau2 = 30), and a
popular object is being updated while many readers fetch it.  While writes
are in flight the edge layer serves readers directly ("proxy cache"
behaviour), so read latency stays near the edge round-trip time; once the
object goes cold, reads must regenerate coded data from the back-end and
pay the tau2 round trip.

Run with:  python examples/edge_cache_scenario.py
"""

from repro import BoundedLatencyModel, LDSConfig, LDSSystem
from repro.consistency import check_atomicity_by_tags
from repro.workloads.metrics import summarize_latencies


def main() -> None:
    config = LDSConfig(n1=7, n2=9, f1=2, f2=2)
    system = LDSSystem(
        config, num_writers=2, num_readers=4,
        latency_model=BoundedLatencyModel(tau0=1.0, tau1=1.0, tau2=30.0, seed=42),
    )
    print(f"Deployment: {config.describe()}  (tau2 / tau1 = 30)")

    # Phase 1: a burst of updates with readers hammering the hot object.
    hot_reads = []
    for round_index in range(4):
        # Rounds are spaced far enough apart that each reader's previous
        # operation has finished (clients are well-formed).
        base = round_index * 100.0
        writer = round_index % 2
        system.invoke_write(f"breaking-news-v{round_index}".encode(), writer=writer, at=base)
        for reader in range(4):
            hot_reads.append(system.invoke_read(reader=reader, at=base + 1.0 + reader * 0.5))
    system.run_until_idle()

    hot_latencies = [system.results[op].duration for op in hot_reads]
    hot_summary = summarize_latencies(hot_latencies)
    print(f"\nhot reads (concurrent with writes): {hot_summary.count} reads, "
          f"mean latency {hot_summary.mean:.1f}, p95 {hot_summary.p95:.1f}")

    # Phase 2: the object goes cold; later readers must reach the back-end.
    cold_reads = [system.read(reader=reader) for reader in range(4)]
    cold_summary = summarize_latencies([result.duration for result in cold_reads])
    print(f"cold reads (after quiescence):      {cold_summary.count} reads, "
          f"mean latency {cold_summary.mean:.1f}, p95 {cold_summary.p95:.1f}")
    print(f"\nedge caching advantage: cold/hot mean latency ratio = "
          f"{cold_summary.mean / hot_summary.mean:.1f}x")

    latest = cold_reads[-1]
    print(f"latest value observed: {latest.value!r}")

    violation = check_atomicity_by_tags(system.history().complete())
    print(f"atomicity check across {len(system.history())} operations: "
          f"{'OK' if violation is None else violation}")


if __name__ == "__main__":
    main()
