#!/usr/bin/env python3
"""Quorum reads end to end: r'-of-r merges, read repair under heavy lag,
nearest-ingress write forwarding -- and a clean audit.

The walkthrough builds a 4-pool, r=3 cluster whose followers lag the
primaries by 400 time units -- longer than the whole read burst -- and
drives the ``quorum-reads-under-lag`` scenario through the ``quorum``
routing policy with ``read_quorum=2``:

* every read queries two stores of its group (a rotating window over
  primary + followers), merges the ``(epoch, tag)`` versions and returns
  the max-version value;
* merges that observe a stale store trigger **read repair**: the store is
  caught up from the replication log at the merge instant instead of
  waiting out the lag -- the run prints how many session-guard fallbacks
  repair saved versus an identical lag-only run;
* writes enter through ``write_ingress="nearest"``, so writes arriving at
  a follower pool are **forwarded** to the primary with the hop charged
  on the global clock.

The run must exit audit-clean (per-epoch atomicity plus all four session
guarantees) and the quorum-drop injection drill must prove the auditor
would catch a merge that lost its freshest response.  Exits non-zero
otherwise, so the CI smoke job doubles as the quorum read path's
correctness gate.

Run with:  PYTHONPATH=src python examples/quorum_reads.py
"""

from repro import ClusterSimulation, LDSConfig, ReplicationConfig
from repro.consistency.injection import (
    inject_quorum_version_drop,
    is_quorum_read,
)
from repro.consistency.sessions import check_sessions
from repro.sim import quorum_reads_under_lag

SEED = 7
KEYS = [f"obj-{i}" for i in range(16)]
POOLS = [f"pool-{i}" for i in range(4)]
REPLICATION_LAG = 400.0


def build(read_repair: bool) -> ClusterSimulation:
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, POOLS, seed=SEED,
        writers_per_shard=2, readers_per_shard=2,
        replication=ReplicationConfig(r=3, replication_lag=REPLICATION_LAG,
                                      read_quorum=2, read_repair=read_repair,
                                      write_ingress="nearest"),
        read_policy="quorum",
    )
    simulation.ensure_shards(KEYS)
    simulation.apply(quorum_reads_under_lag(KEYS, seed=SEED))
    return simulation


def main() -> int:
    simulation = build(read_repair=True)
    print(f"cluster: {simulation.describe()}")
    scenario = quorum_reads_under_lag(KEYS, seed=SEED)
    print(f"scenario: {scenario.name} -- {scenario.description}\n")

    distribution = simulation.read_distribution()
    print("== quorum read routing ==")
    print(f"  {distribution.describe()}")
    depths = distribution.quorum_depths
    for depth in sorted(depths):
        print(f"  merges with {depth} response(s): {depths[depth]}")
    print(f"  read repairs: {distribution.read_repairs} store(s) caught up "
          f"({simulation.replicas.stats.read_repair_records} record(s)) "
          f"~{REPLICATION_LAG:g} time units early")
    print(f"  forwarded writes: {distribution.forwarded_writes}")

    lag_only = build(read_repair=False).read_distribution()
    print("\n== read repair vs lag-only catch-up (same seed) ==")
    print(f"  session fallbacks with repair:   {distribution.session_fallbacks}")
    print(f"  session fallbacks lag-only:      {lag_only.session_fallbacks}")

    failures = []
    if distribution.quorum_reads < 50:
        failures.append("expected a substantial quorum read volume")
    if distribution.read_repairs < 1:
        failures.append("expected read repair to fire under this lag")
    if distribution.forwarded_writes < 1:
        failures.append("expected nearest-ingress writes to forward")
    if distribution.session_fallbacks >= lag_only.session_fallbacks:
        failures.append(
            "read repair should reduce session fallbacks vs lag-only"
        )

    report = simulation.audit()
    print(f"\n== audit ==\n  {report.describe()}")
    if not report.ok:
        failures.append("the audit reported violations")

    history = simulation.history(global_clock=True)
    if any(is_quorum_read(op) for op in history):
        injection = inject_quorum_version_drop(history)
        injected = check_sessions(injection.history)
        status = "DETECTED" if not injected.ok else "MISSED"
        print(f"  quorum-drop injection [{injection.guarantee}]: {status} "
              f"({injection.description})")
        if injected.ok:
            failures.append("the quorum-drop injection went undetected")
    else:
        failures.append("no quorum-merged reads to inject against")

    if failures:
        print("\nFAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    saved = lag_only.session_fallbacks - distribution.session_fallbacks
    print(f"\nOK: {distribution.quorum_reads} quorum merges, "
          f"{distribution.read_repairs} read repairs saving {saved} "
          f"session fallbacks, {distribution.forwarded_writes} forwarded "
          "writes, audit clean, injection detected.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
