"""Unit tests for pump profiling (the attribution sink and kernel hooks)."""

from __future__ import annotations

import functools

from repro.net.simulator import Simulator
from repro.obs.profile import PumpProfile
from repro.sim.kernel import GlobalScheduler


class TestPumpProfile:
    def test_record_accumulates_per_source_kind_and_label(self):
        profile = PumpProfile()
        profile.record("shard:obj-0", "Replica._apply", 2.0, 0.001)
        profile.record("shard:obj-1", "Replica._apply", 3.0, 0.002)
        profile.record("kernel", "Engine._fire", 1.0, 0.004)
        row_by_key = {(row["source"], row["event_type"]): row
                      for row in profile.rows()}
        merged = row_by_key[("shard", "Replica._apply")]
        assert merged["count"] == 2
        assert merged["sim_time"] == 5.0
        assert profile.events == 3
        assert profile.wall_seconds == 0.007

    def test_rows_sorted_by_wall_time(self):
        profile = PumpProfile()
        profile.record("a", "light", 0.0, 0.001)
        profile.record("b", "heavy", 0.0, 0.010)
        assert [row["event_type"] for row in profile.rows()] == \
            ["heavy", "light"]

    def test_collapsed_lines_weighted_by_count(self):
        profile = PumpProfile()
        profile.record("shard:x", "Replica._apply", 0.0, 0.0)
        profile.record("shard:y", "Replica._apply", 0.0, 0.0)
        assert profile.collapsed() == ["shard;Replica._apply 2"]

    def test_label_for_unwraps_partials_and_handles_idle(self):
        profile = PumpProfile()

        class FakeSource:
            def __init__(self, simulator):
                self.simulator = simulator

        def callback():
            pass

        simulator = Simulator()
        simulator.schedule(1.0, functools.partial(callback))
        source = FakeSource(simulator)
        assert "callback" in profile.label_for(source)

        empty = FakeSource(Simulator())
        assert profile.label_for(empty) == "<idle>"

    def test_render_limits_rows(self):
        profile = PumpProfile()
        for i in range(15):
            profile.record("s", f"type-{i}", 0.0, 0.0)
        rendered = profile.render(limit=3)
        assert "... 12 more event types" in rendered


class TestKernelHooks:
    def _pump(self, kernel):
        source = kernel.register_simulator(Simulator(), name="work")

        def tick(n):
            if n > 0:
                source.simulator.schedule(5.0, lambda: tick(n - 1))

        source.simulator.schedule(5.0, lambda: tick(3))
        kernel.run_until_idle()

    def test_enable_profiling_is_idempotent(self):
        kernel = GlobalScheduler()
        first = kernel.enable_profiling()
        second = kernel.enable_profiling()
        assert first is second
        assert kernel.profile is first

    def test_profiled_run_keeps_fingerprint(self):
        bare = GlobalScheduler()
        self._pump(bare)

        profiled = GlobalScheduler()
        profile = profiled.enable_profiling()
        self._pump(profiled)

        assert profiled.fingerprint == bare.fingerprint
        assert profile.events == profiled.events_processed
        assert profile.events > 0

    def test_disabled_kernel_has_no_profile(self):
        kernel = GlobalScheduler()
        self._pump(kernel)
        assert kernel.profile is None
