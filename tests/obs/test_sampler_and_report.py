"""Tests for the kernel-driven sampler, probe semantics, and run report."""

from __future__ import annotations

import json

import pytest

from repro.cluster.replicas import ReplicationConfig
from repro.core.config import LDSConfig
from repro.net.simulator import Simulator
from repro.obs import Telemetry
from repro.sim import (
    TELEMETRY_SOURCE,
    ClusterSimulation,
    quorum_reads_under_lag,
)
from repro.sim.kernel import GlobalScheduler

KEYS = [f"obj-{i}" for i in range(8)]
POOLS = [f"pool-{i}" for i in range(3)]
SEED = 11
INTERVAL = 20.0


class TestProbeSemantics:
    def test_probe_fires_without_touching_determinism_surface(self):
        kernel = GlobalScheduler()
        source = kernel.register_simulator(Simulator(), name="work")
        source.simulator.schedule(50.0, lambda: None)

        seen = []
        kernel.schedule_probe(10.0, lambda: seen.append(kernel.now))
        kernel.run_until_idle()

        # The probe ran before the foreground event, but the clock it saw
        # (and everything fingerprinted) belongs to the foreground only.
        assert seen == [0.0]
        assert kernel.now == 50.0
        assert TELEMETRY_SOURCE not in kernel.stats.events_by_source
        assert kernel.stats.events_total == 1

    def test_probe_in_the_past_rejected(self):
        kernel = GlobalScheduler()
        source = kernel.register_simulator(Simulator(), name="work")
        source.simulator.schedule(5.0, lambda: None)
        kernel.run_until_idle()
        with pytest.raises(ValueError):
            kernel.schedule_probe(kernel.now - 1.0, lambda: None)

    def test_pending_work_ignores_telemetry_source(self):
        kernel = GlobalScheduler()
        kernel.register_simulator(Simulator(), name="work")
        assert not kernel.pending_work()
        kernel.schedule_probe(100.0, lambda: None)
        assert not kernel.pending_work()
        kernel.source("work").simulator.schedule(1.0, lambda: None)
        assert kernel.pending_work()


@pytest.fixture(scope="module")
def run():
    telemetry = Telemetry.full(sample_interval=INTERVAL)
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, POOLS, seed=SEED,
        replication=ReplicationConfig(r=3, replication_lag=300.0,
                                      read_quorum=2),
        read_policy="quorum",
        writers_per_shard=2, readers_per_shard=2,
        telemetry=telemetry,
    )
    simulation.ensure_shards(KEYS)
    simulation.apply(quorum_reads_under_lag(KEYS, seed=SEED, operations=60))
    return simulation, telemetry


class TestClusterSampler:
    def test_samples_on_the_configured_cadence(self, run):
        _, telemetry = run
        ticks = [row["t"] for row in telemetry.sampler.samples]
        assert len(ticks) >= 3
        assert ticks == sorted(ticks)
        deltas = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(delta == INTERVAL for delta in deltas)

    def test_rows_carry_the_documented_shape(self, run):
        _, telemetry = run
        row = telemetry.sampler.samples[0]
        assert set(row) >= {"t", "queue_depth", "replication_lag", "repair",
                            "reads", "pools_live", "shards"}
        assert set(row["repair"]) >= {"outstanding", "dispatched",
                                      "completed", "gave_up", "retries"}

    def test_lag_observed_then_drained(self, run):
        _, telemetry = run
        lag = telemetry.sampler.series("replication_lag", "max")
        assert max(lag) > 0
        assert lag[-1] == 0

    def test_jsonl_roundtrip(self, run, tmp_path):
        _, telemetry = run
        path = tmp_path / "series.jsonl"
        telemetry.sampler.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert len(lines) == len(telemetry.sampler.samples)
        assert json.loads(lines[0]) == telemetry.sampler.samples[0]

    def test_sampler_rearms_for_a_second_burst(self, run):
        simulation, telemetry = run
        before = len(telemetry.sampler.samples)
        # The first burst drained, so the sampler wound itself down;
        # feeding more foreground work must restart the cadence.
        simulation.apply(quorum_reads_under_lag(KEYS, seed=SEED + 1,
                                                operations=40))
        assert len(telemetry.sampler.samples) > before

    def test_registry_gauges_track_last_sample(self, run):
        _, telemetry = run
        last = telemetry.sampler.samples[-1]
        gauge = telemetry.registry.get("cluster_replication_lag_max")
        assert gauge.value == last["replication_lag"]["max"]


class TestRunReport:
    def test_report_renders_every_section(self, run):
        simulation, _ = run
        report = simulation.run_report()
        for heading in ("== run report ==", "-- routing --", "-- repair --",
                        "-- time series", "-- metrics --", "-- trace --",
                        "-- pump profile --"):
            assert heading in report
        assert "dispatched=" in report
        assert "gave_up=" in report

    def test_run_report_requires_telemetry(self):
        config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
        simulation = ClusterSimulation(config, POOLS, seed=SEED)
        with pytest.raises(ValueError):
            simulation.run_report()
