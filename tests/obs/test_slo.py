"""SLO error-budget math, the burn-rate probe, and non-interference."""

import json

import pytest

from repro import ClusterSimulation, LDSConfig, ReplicationConfig, Telemetry
from repro.obs.latency import LatencyTracker
from repro.obs.slo import (
    DEFAULT_LATENCY_TARGETS,
    SLO,
    SLOTracker,
    default_slos,
)
from repro.sim import quorum_reads_under_lag


class FakeKernel:
    def __init__(self):
        self.now = 0.0
        self.probes = []
        self.busy = True

    def schedule_probe(self, time, callback):
        self.probes.append((time, callback))

    def pending_work(self):
        return self.busy


class FakeSimulation:
    def __init__(self):
        self.kernel = FakeKernel()


def feed(tracker, op_class, totals):
    """Complete one synthetic op per total, classified as ``op_class``."""
    kind = "write" if "write" in op_class else "read"
    child = {"forwarded-write": "forward-hop p",
             "quorum-read": "quorum-leg p",
             "follower-read": "store-read p"}.get(op_class)
    for i, total in enumerate(totals):
        handle = f"{op_class}-{i}-{len(tracker.records)}"
        tracker.begin_op(handle, kind, "k", 0.0)
        if child is not None:
            tracker.child_span(handle, child, "x", 0.0, total / 2.0)
        tracker.end_op(handle, total)


class TestSLODefinitions:
    def test_default_slos_cover_every_class(self):
        slos = default_slos()
        assert {slo.op_class for slo in slos} == set(DEFAULT_LATENCY_TARGETS)
        for slo in slos:
            assert slo.target_fraction == 0.99
            assert slo.allowed_breach_fraction == pytest.approx(0.01)

    def test_invalid_slos_rejected(self):
        with pytest.raises(ValueError):
            SLO(op_class="write", latency_target=10.0, target_fraction=1.0)
        with pytest.raises(ValueError):
            SLO(op_class="write", latency_target=0.0)


class TestBudgetAccounting:
    def _tracker(self, slos=None):
        latency = LatencyTracker()
        tracker = SLOTracker(FakeSimulation(), latency, slos=slos)
        return latency, tracker

    def test_no_breaches_no_burn(self):
        latency, tracker = self._tracker(
            slos=(SLO(op_class="write", latency_target=50.0),))
        feed(latency, "write", [10.0] * 100)
        status = tracker.snapshot()["write"]
        assert status.ops == 100
        assert status.breaches == 0
        assert status.budget_consumed == 0.0
        assert status.burn_rate == 0.0
        assert status.met

    def test_burn_rate_of_exactly_on_budget(self):
        # 1 breach in 100 ops against a 99% objective: burning at 1.0x.
        latency, tracker = self._tracker(
            slos=(SLO(op_class="write", latency_target=50.0,
                      target_fraction=0.99),))
        feed(latency, "write", [10.0] * 99 + [60.0])
        status = tracker.snapshot()["write"]
        assert status.breaches == 1
        assert status.burn_rate == pytest.approx(1.0)
        assert status.budget_consumed == pytest.approx(1.0)
        assert status.met

    def test_blown_budget(self):
        latency, tracker = self._tracker(
            slos=(SLO(op_class="write", latency_target=50.0,
                      target_fraction=0.99),))
        feed(latency, "write", [10.0] * 90 + [60.0] * 10)
        status = tracker.snapshot()["write"]
        assert status.burn_rate == pytest.approx(10.0)
        assert status.budget_consumed == pytest.approx(10.0)
        assert not status.met

    def test_boundary_is_not_a_breach(self):
        latency, tracker = self._tracker(
            slos=(SLO(op_class="write", latency_target=50.0),))
        feed(latency, "write", [50.0, 50.0000001])
        status = tracker.snapshot()["write"]
        assert status.breaches == 1

    def test_unknown_classes_ignored(self):
        latency, tracker = self._tracker(
            slos=(SLO(op_class="write", latency_target=50.0),))
        feed(latency, "quorum-read", [500.0] * 5)
        assert "quorum-read" not in tracker.snapshot()

    def test_counters_are_cumulative_across_snapshots(self):
        latency, tracker = self._tracker()
        feed(latency, "write", [10.0] * 10)
        tracker.snapshot()
        feed(latency, "write", [999.0] * 10)
        status = tracker.snapshot()["write"]
        assert status.ops == 20
        assert status.breaches == 10
        counters = tracker.registry.to_dict()
        assert counters["slo_ops"]["write"] == 20
        assert counters["slo_latency_breaches"]["write"] == 10

    def test_availability_counts_stranded_ops(self):
        latency, tracker = self._tracker()
        feed(latency, "write", [10.0] * 5)
        latency.begin_op("doomed", "read", "k", 0.0)
        latency.child_instant("doomed", "store-crashed pool-1", "replica",
                              1.0)
        availability = tracker.availability()
        assert availability["write"]["fraction"] == 1.0
        assert availability["read"]["invoked"] == 1
        assert availability["read"]["completed"] == 0
        assert not availability["read"]["met"]


class TestSLOProbe:
    def test_probe_samples_and_window_burn(self):
        simulation = FakeSimulation()
        latency = LatencyTracker()
        tracker = SLOTracker(simulation, latency, interval=50.0,
                             slos=(SLO(op_class="write",
                                       latency_target=50.0),))
        tracker.start()
        assert simulation.kernel.probes[0][0] == 50.0

        feed(latency, "write", [10.0] * 99 + [60.0])
        _, probe = simulation.kernel.probes.pop(0)
        probe()
        row = tracker.samples[-1]
        assert row["classes"]["write"]["burn_rate"] == pytest.approx(1.0)
        assert row["classes"]["write"]["window_burn_rate"] == \
            pytest.approx(1.0)

        # Second window is clean: the window burn resets, the cumulative
        # rate decays but stays nonzero.
        feed(latency, "write", [10.0] * 100)
        _, probe = simulation.kernel.probes.pop(0)
        probe()
        row = tracker.samples[-1]
        assert row["classes"]["write"]["window_burn_rate"] == 0.0
        assert 0.0 < row["classes"]["write"]["burn_rate"] < 1.0

    def test_probe_winds_down_when_idle(self):
        simulation = FakeSimulation()
        latency = LatencyTracker()
        tracker = SLOTracker(simulation, latency, interval=10.0)
        tracker.start()
        simulation.kernel.busy = False
        _, probe = simulation.kernel.probes.pop(0)
        probe()  # pending_work() is False -> no re-arm
        assert simulation.kernel.probes == []
        tracker.ensure_armed()
        assert len(simulation.kernel.probes) == 1

    def test_jsonl_export(self, tmp_path):
        simulation = FakeSimulation()
        latency = LatencyTracker()
        tracker = SLOTracker(simulation, latency, interval=10.0)
        feed(latency, "quorum-read", [10.0, 20.0])
        tracker.samples.append(tracker.sample(10.0))
        path = tmp_path / "slo.jsonl"
        tracker.write_jsonl(path)
        row, = [json.loads(line) for line in path.read_text().splitlines()]
        assert row["t"] == 10.0
        assert row["classes"]["quorum-read"]["ops"] == 2


def run_cluster(telemetry, seed=11):
    keys = [f"obj-{i}" for i in range(12)]
    simulation = ClusterSimulation(
        LDSConfig(n1=3, n2=4, f1=1, f2=1),
        [f"pool-{i}" for i in range(4)], seed=seed,
        writers_per_shard=2, readers_per_shard=2,
        replication=ReplicationConfig(r=3, replication_lag=300.0,
                                      read_quorum=2),
        read_policy="quorum", telemetry=telemetry)
    simulation.ensure_shards(keys)
    simulation.apply(quorum_reads_under_lag(keys, seed=seed))
    simulation.run_until_idle()
    return simulation


class TestSLOEndToEnd:
    def test_probe_runs_on_the_kernel(self):
        telemetry = Telemetry(slo_interval=50.0)
        run_cluster(telemetry)
        assert telemetry.latency is not None  # SLO implies latency
        assert telemetry.slo is not None
        assert telemetry.slo.samples
        statuses = telemetry.slo.snapshot()
        assert "quorum-read" in statuses
        assert statuses["quorum-read"].ops == \
            telemetry.latency.sketch("quorum-read").count

    def test_slo_probes_do_not_perturb(self):
        with_slo = run_cluster(Telemetry(trace=True, latency=True,
                                         slo_interval=25.0))
        without = run_cluster(None)
        assert with_slo.kernel.fingerprint == without.kernel.fingerprint
        assert repr(with_slo.history().operations) == \
            repr(without.history().operations)

    def test_counter_tracks_emitted_when_tracing(self):
        telemetry = Telemetry(trace=True, slo_interval=50.0)
        run_cluster(telemetry)
        counters = [event for event in telemetry.trace.events
                    if event.get("ph") == "C"
                    and event.get("name", "").startswith("slo ")]
        assert counters
        assert {"p99", "burn"} <= set(counters[0]["args"])
