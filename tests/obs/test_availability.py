"""The sampling availability monitor and its injection drills.

The monitor's claim is a *calibrated* one: it only alarms on silent
holes (missing fragment, no repair pending, pool alive), stays quiet on
faults the control plane already owns (repair backlog, dead pools), and
quantifies how hard it has looked (per-object detection confidence
1 - (1 - 1/n2)^samples).  Each test pins one arm of that contract.
"""

from __future__ import annotations

import pytest

from repro.consistency.injection import (
    InjectionError,
    inject_under_replication,
    inject_withheld_repair,
)
from repro.core.config import LDSConfig
from repro.obs.availability import AvailabilityMonitor, PROTECTED, SILENT
from repro.sim import ClusterSimulation

KEYS = [f"obj-{i}" for i in range(12)]
POOLS = [f"pool-{i}" for i in range(4)]
CONFIG = LDSConfig(n1=3, n2=4, f1=1, f2=1)


def build(seed: int = 11) -> ClusterSimulation:
    simulation = ClusterSimulation(CONFIG, POOLS, seed=seed, live_audit=True)
    simulation.ensure_shards(KEYS)
    for index, key in enumerate(KEYS):
        simulation.invoke_write(key, b"v", at=float(index))
    simulation.run_until_idle()
    return simulation


def sample(simulation, epochs: int = 10):
    monitor = simulation.telemetry.availability
    for _ in range(epochs):
        monitor.tick()
    return monitor


class TestSilentHoles:
    def test_under_replication_raises_the_alarm(self):
        simulation = build()
        drill = inject_under_replication(simulation, count=len(KEYS))
        monitor = sample(simulation)
        assessment = monitor.assessment()
        assert not assessment.ok
        holes = set(drill.holes)
        for row in assessment.silent_alarms:
            assert (row["key"], row["l2_index"], row["pool"]) in holes
        assert "availability ALARM" in assessment.describe()
        assert monitor._c_silent.value == len(assessment.silent_alarms)
        report = simulation.audit()
        assert not report.ok
        assert "availability ALARM" in report.describe()

    def test_withheld_repair_raises_the_alarm(self):
        simulation = build()
        drill = inject_withheld_repair(simulation)
        assert drill.node_id is not None
        assert drill.holes  # the failure did schedule (withheld) repairs
        # Deliver the crash events (membership failures crash shard slots
        # through the shard clocks); the withheld repairs never run.
        simulation.kernel.run(until=simulation.now + 0.5)
        monitor = sample(simulation, epochs=20)
        assessment = monitor.assessment()
        assert not assessment.ok
        holes = set(drill.holes)
        for row in assessment.silent_alarms:
            assert (row["key"], row["l2_index"], row["pool"]) in holes

    def test_the_armed_probe_catches_a_mid_run_injection(self):
        # End to end through the kernel probe cadence: inject, then give
        # the run enough foreground work for sampling epochs to fire.
        simulation = build()
        inject_under_replication(simulation, count=len(KEYS))
        start = simulation.now
        for index, key in enumerate(KEYS):
            simulation.invoke_write(key, b"w", at=start + 20.0 * (index + 1))
        simulation.run_until_idle()
        monitor = simulation.telemetry.availability
        assert monitor.silent_alarms, \
            "the probe cadence sampled past the holes"
        assert not simulation.audit().ok


class TestCalibratedQuiet:
    def test_a_pending_repair_is_protected_not_silent(self):
        simulation = build()
        simulation.cluster.fail_node("pool-0/l2-0", time=simulation.now)
        # Pump just past the crash delivery but short of the repair's
        # detection delay: fragments missing, backlog still covering them.
        simulation.kernel.run(until=simulation.now + 0.5)
        monitor = simulation.telemetry.availability
        outcomes = []
        for _ in range(10):
            outcomes.extend(monitor.tick())
        assert PROTECTED in outcomes
        assert SILENT not in outcomes
        assessment = monitor.assessment()
        assert assessment.ok
        assert assessment.protected_misses > 0
        assert "availability ok" in assessment.describe()

    def test_a_dead_pool_is_an_outage_not_silent_decay(self):
        simulation = build()
        simulation.cluster.fail_pool("pool-0", time=simulation.now)
        simulation.kernel.run(until=simulation.now + 0.5)
        monitor = sample(simulation)
        assessment = monitor.assessment()
        assert assessment.ok
        assert assessment.pool_down_misses > 0
        assert not assessment.silent_alarms

    def test_a_healthy_cluster_samples_all_present(self):
        simulation = build()
        monitor = simulation.telemetry.availability
        base = monitor.samples_taken  # the armed probe sampled during build
        for _ in range(4):
            monitor.tick()
        assessment = monitor.assessment()
        assert assessment.ok
        assert assessment.fragments_missing == 0
        assert assessment.samples_taken == base + 4 * monitor.samples_per_epoch


class TestConfidence:
    def test_confidence_matches_the_analytic_bound(self):
        simulation = build()
        monitor = sample(simulation, epochs=6)
        assessment = monitor.assessment()
        n2 = CONFIG.n2
        for key, samples in monitor.samples_by_object.items():
            expected = 1.0 - (1.0 - 1.0 / n2) ** samples
            assert assessment.confidence_by_object[key] == \
                pytest.approx(expected)
        assert assessment.min_confidence == \
            pytest.approx(min(assessment.confidence_by_object.values()))

    def test_confidence_grows_with_samples(self):
        simulation = build()
        monitor = simulation.telemetry.availability
        monitor.tick()
        early = monitor.assessment().min_confidence
        for _ in range(19):
            monitor.tick()
        late = monitor.assessment().min_confidence
        assert 0.0 < early < late < 1.0


class TestBacklogAgeWeighting:
    """Sampling weighted by repair-backlog age: the oldest known holes
    are probed directly, so an aged hole whose repair silently gave up
    is caught in fewer epochs than uniform sampling needs."""

    def _age_a_hole(self, monitor):
        """Fail a node, let the monitor see its backlog, then withhold
        the repair -- an *aged* silent hole the watchlist remembers."""
        simulation = monitor.simulation
        simulation.cluster.fail_node("pool-0/l2-0", time=simulation.now)
        simulation.kernel.run(until=simulation.now + 0.5)
        assert simulation.repair.pending_slots()
        outcomes = monitor.tick()  # backlog observed -> watchlist stamped
        assert SILENT not in outcomes
        withheld = []
        for task in simulation.repair.tasks:
            withheld.extend(
                simulation.repair.withhold_node(task.node_id))
            break
        assert withheld
        return {(task.key, task.l2_index) for task in withheld}

    def _epochs_to_detect(self, backlog_priority, seed=11, limit=60):
        simulation = build(seed=seed)
        monitor = AvailabilityMonitor(simulation, samples_per_epoch=2,
                                      backlog_priority=backlog_priority,
                                      seed=seed)
        holes = self._age_a_hole(monitor)
        for epoch in range(1, limit + 1):
            if SILENT in monitor.tick():
                assert {(row["key"], row["l2_index"])
                        for row in monitor.silent_alarms} <= holes
                return epoch
        return limit + 1

    def test_aged_hole_detected_faster_than_uniform(self):
        weighted = self._epochs_to_detect(backlog_priority=2)
        uniform = self._epochs_to_detect(backlog_priority=0)
        assert weighted == 1  # the watchlist probes the oldest slot first
        assert weighted < uniform

    def test_watchlist_drains_when_the_repair_lands(self):
        # A hole that the repair pipeline actually fixes must leave the
        # watchlist once observed present, freeing the budget.
        simulation = build()
        monitor = AvailabilityMonitor(simulation, samples_per_epoch=4,
                                      backlog_priority=2, seed=5)
        simulation.cluster.fail_node("pool-0/l2-0", time=simulation.now)
        simulation.kernel.run(until=simulation.now + 0.5)
        monitor.tick()
        assert monitor._watchlist
        simulation.run_until_idle()  # the repair completes
        for _ in range(4):
            monitor.tick()
        assert not monitor._watchlist
        assert monitor.assessment().ok

    def test_empty_backlog_is_byte_identical_to_uniform(self):
        # With nothing in the backlog the weighted monitor must draw the
        # exact same uniform samples (same RNG stream) as priority=0.
        runs = []
        for priority in (0, 3):
            simulation = build(seed=17)
            monitor = AvailabilityMonitor(simulation, samples_per_epoch=6,
                                          backlog_priority=priority, seed=17)
            for _ in range(8):
                monitor.tick()
            runs.append((monitor.samples_taken,
                         dict(monitor.samples_by_object)))
        assert runs[0] == runs[1]

    def test_budget_is_constant_per_epoch(self):
        simulation = build()
        monitor = AvailabilityMonitor(simulation, samples_per_epoch=3,
                                      backlog_priority=2, seed=3)
        self._age_a_hole(monitor)
        before = monitor.samples_taken
        for _ in range(5):
            assert len(monitor.tick()) == 3
        assert monitor.samples_taken == before + 15

    def test_negative_priority_rejected(self):
        simulation = ClusterSimulation(CONFIG, POOLS, seed=1)
        with pytest.raises(ValueError):
            AvailabilityMonitor(simulation, backlog_priority=-1)


class TestDrillPreconditions:
    def test_under_replication_needs_shards(self):
        simulation = ClusterSimulation(CONFIG, POOLS, seed=1)
        with pytest.raises(InjectionError):
            inject_under_replication(simulation)

    def test_under_replication_needs_enough_shards(self):
        simulation = build()
        with pytest.raises(InjectionError):
            inject_under_replication(simulation, count=len(KEYS) + 1)

    def test_withheld_repair_needs_shards(self):
        simulation = ClusterSimulation(CONFIG, POOLS, seed=1)
        with pytest.raises(InjectionError):
            inject_withheld_repair(simulation)

    def test_monitor_parameter_validation(self):
        simulation = ClusterSimulation(CONFIG, POOLS, seed=1)
        with pytest.raises(ValueError):
            AvailabilityMonitor(simulation, interval=0.0)
        with pytest.raises(ValueError):
            AvailabilityMonitor(simulation, samples_per_epoch=0)
