"""Unit tests for the Chrome trace_event recorder."""

from __future__ import annotations

import json

from repro.obs.trace import TRACE_PID, TS_SCALE, TraceRecorder


def _events(trace, ph):
    return [event for event in trace.events if event["ph"] == ph]


class TestRootSpans:
    def test_begin_end_pair_shares_id_and_track(self):
        trace = TraceRecorder()
        trace.begin_op("h1", "write", "obj-0", 10.0, args={"writer": "w0"})
        trace.end_op("h1", 14.0, args={"tag": "(1, 'w0')"})
        begin, = _events(trace, "b")
        end, = _events(trace, "e")
        assert begin["id"] == end["id"] == "h1"
        assert begin["tid"] == end["tid"]
        assert begin["name"] == end["name"] == "write obj-0"
        assert begin["ts"] == 10.0 * TS_SCALE
        assert end["ts"] == 14.0 * TS_SCALE
        assert begin["args"] == {"writer": "w0"}

    def test_tracks_are_per_key_with_thread_names(self):
        trace = TraceRecorder()
        trace.begin_op("h1", "write", "obj-0", 0.0)
        trace.begin_op("h2", "read", "obj-1", 0.0)
        trace.begin_op("h3", "read", "obj-0", 1.0)
        metadata = _events(trace, "M")
        names = {event["args"]["name"] for event in metadata}
        assert names == {"key obj-0", "key obj-1"}
        begins = _events(trace, "b")
        assert begins[0]["tid"] == begins[2]["tid"]
        assert begins[0]["tid"] != begins[1]["tid"]

    def test_open_handles_tracks_unclosed_roots(self):
        trace = TraceRecorder()
        trace.begin_op("h1", "write", "obj-0", 0.0)
        trace.begin_op("h2", "read", "obj-0", 0.0)
        trace.end_op("h2", 5.0)
        assert trace.open_handles() == ["h1"]

    def test_end_of_unknown_handle_is_noop(self):
        trace = TraceRecorder()
        trace.end_op("ghost", 1.0)
        assert trace.events == []


class TestChildren:
    def test_child_span_carries_parent_and_roots_track(self):
        trace = TraceRecorder()
        trace.begin_op("h1", "write", "obj-0", 0.0)
        trace.child_span("h1", "forward-hop pool-1", "replica", 1.0, 3.0,
                         args={"from": "pool-1"})
        children = trace.children_of("h1")
        span, = children
        assert span["args"]["parent"] == "h1"
        assert span["args"]["from"] == "pool-1"
        assert span["tid"] == trace.events[1]["tid"]

    def test_child_instant_is_ph_n(self):
        trace = TraceRecorder()
        trace.begin_op("h1", "read", "obj-0", 0.0)
        trace.child_instant("h1", "read-repair pool-2", "replica", 4.0)
        instant, = _events(trace, "n")
        assert instant["args"]["parent"] == "h1"

    def test_orphan_child_lands_on_cluster_track(self):
        trace = TraceRecorder()
        trace.child_instant("unknown", "stray", "replica", 1.0)
        instant, = _events(trace, "n")
        metadata, = _events(trace, "M")
        assert metadata["args"]["name"] == "cluster"
        assert instant["tid"] == metadata["tid"]


class TestGlobalEvents:
    def test_instant_and_counter(self):
        trace = TraceRecorder()
        trace.instant("kill-pool: pool-0", 100.0)
        trace.counter("replication lag", 100.0, {"max": 6})
        instant, = _events(trace, "i")
        counter, = _events(trace, "C")
        assert instant["s"] == "p"
        assert counter["args"] == {"max": 6}


class TestQueriesAndOutput:
    def test_spans_filters_by_prefix(self):
        trace = TraceRecorder()
        trace.begin_op("h1", "write", "obj-0", 0.0)
        trace.begin_op("h2", "read", "obj-0", 0.0)
        assert len(trace.spans("write ")) == 1
        assert len(trace.spans("read ")) == 1
        assert len(trace.spans()) == 2

    def test_to_json_and_write_roundtrip(self, tmp_path):
        trace = TraceRecorder()
        trace.begin_op("h1", "write", "obj-0", 2.5)
        trace.end_op("h1", 3.5)
        path = tmp_path / "trace.json"
        trace.write(path)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert payload["traceEvents"] == trace.to_json()["traceEvents"]
        assert all(event["pid"] == TRACE_PID
                   for event in payload["traceEvents"])
