"""QuantileSketch accuracy/merge laws, critical-path extraction, and the
LatencyTracker's live decomposition of the cluster span stream."""

import json
import math
import random

import numpy as np
import pytest

from repro import ClusterSimulation, LDSConfig, ReplicationConfig, Telemetry
from repro.obs.critical_path import (
    PHASE_FALLBACK,
    PHASE_FORWARD,
    PHASE_FREEZE,
    PHASE_PROTOCOL,
    PHASE_QUEUE,
    PHASE_QUORUM,
    PHASE_STORE_READ,
    attribute,
    child_phase,
    classify_op,
    collapse_parallel,
    critical_path,
    dominant,
    extract_ops,
    phase_durations,
)
from repro.obs.latency import (
    DEFAULT_RELATIVE_ERROR,
    LatencyTracker,
    QuantileSketch,
    SpanSinkFanout,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import TraceRecorder
from repro.sim import quorum_reads_under_lag

QUANTILES = (0.50, 0.90, 0.99, 0.999)


def exact_percentile(values, q):
    """The order statistic the sketch estimates: rank floor(q*(n-1))."""
    ordered = sorted(values)
    return ordered[int(math.floor(q * (len(ordered) - 1)))]


def assert_within_relative_error(sketch, values, alpha):
    for q in QUANTILES:
        exact = exact_percentile(values, q)
        estimate = sketch.quantile(q)
        if exact == 0.0:
            assert estimate == 0.0
        else:
            assert abs(estimate - exact) <= alpha * exact * 1.0000001, (
                f"q={q}: estimate {estimate} vs exact {exact}"
            )


class TestQuantileSketchAccuracy:
    """Error bounds vs exact numpy/order-statistic percentiles."""

    def test_bimodal(self):
        rng = random.Random(41)
        values = [rng.gauss(10.0, 1.0) if rng.random() < 0.9
                  else rng.gauss(500.0, 25.0) for _ in range(20_000)]
        values = [abs(v) for v in values]
        sketch = QuantileSketch("s")
        for v in values:
            sketch.observe(v)
        assert_within_relative_error(sketch, values, sketch.relative_error)

    def test_pareto_heavy_tail(self):
        rng = np.random.default_rng(42)
        values = (rng.pareto(1.2, size=50_000) + 1.0) * 3.0
        sketch = QuantileSketch("s", relative_error=0.02)
        for v in values:
            sketch.observe(float(v))
        assert_within_relative_error(sketch, values.tolist(), 0.02)

    def test_constant_distribution(self):
        sketch = QuantileSketch("s")
        for _ in range(1000):
            sketch.observe(7.25)
        for q in QUANTILES:
            assert sketch.quantile(q) == pytest.approx(7.25, rel=0.01)
        assert sketch.bucket_count == 1

    def test_zero_and_negative_values_hit_zero_bucket(self):
        sketch = QuantileSketch("s")
        for v in (0.0, 0.0, -1.0, 5.0):
            sketch.observe(v)
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == pytest.approx(5.0, rel=0.01)
        assert sketch.minimum == -1.0

    def test_empty_sketch(self):
        sketch = QuantileSketch("s")
        assert sketch.count == 0
        assert sketch.p99 == 0.0
        assert sketch.mean == 0.0

    def test_memory_is_bounded_by_range_not_count(self):
        # 1e6 values spanning [1, 1e6): bucket count depends only on the
        # dynamic range / gamma, never on how many samples went in.
        sketch = QuantileSketch("s")
        rng = random.Random(43)
        for _ in range(100_000):
            sketch.observe(math.exp(rng.uniform(0.0, math.log(1e6))))
        bound = math.log(1e6) / math.log(
            (1 + sketch.relative_error) / (1 - sketch.relative_error)) + 2
        assert sketch.bucket_count <= bound

    def test_accuracy_survives_merging(self):
        rng = random.Random(44)
        values = [rng.expovariate(0.01) + 0.001 for _ in range(30_000)]
        shards = [QuantileSketch("s") for _ in range(7)]
        for i, v in enumerate(values):
            shards[i % 7].observe(v)
        merged = QuantileSketch("s")
        for shard in shards:
            merged.merge(shard)
        assert merged.count == len(values)
        assert_within_relative_error(merged, values, merged.relative_error)


def sketch_signature(sketch):
    """Everything but the float ``sum``/``mean`` accumulators, whose
    last-ulp value depends on addition order; the bucket counts -- and
    therefore every quantile -- are exact integers and must agree."""
    out = sketch.to_dict()
    out.pop("sum")
    out.pop("mean")
    return out


class TestQuantileSketchMergeLaws:
    def _sketches(self, seed, n=3):
        rng = random.Random(seed)
        out = []
        for _ in range(n):
            sketch = QuantileSketch("s")
            for _ in range(rng.randrange(100, 500)):
                sketch.observe(rng.expovariate(0.05) + 0.01)
            out.append(sketch)
        return out

    def test_merge_is_associative(self):
        a, b, c = self._sketches(45)
        left = a.copy().merge(b).merge(c)
        right = a.copy().merge(b.copy().merge(c))
        assert sketch_signature(left) == sketch_signature(right)
        assert left.sum == pytest.approx(right.sum)

    def test_merge_order_does_not_matter(self):
        import itertools
        sketches = self._sketches(46)
        results = []
        for order in itertools.permutations(range(3)):
            merged = QuantileSketch("s")
            for i in order:
                merged.merge(sketches[i])
            results.append(json.dumps(sketch_signature(merged),
                                      sort_keys=True))
        assert len(set(results)) == 1

    def test_merge_equals_direct_ingestion(self):
        rng = random.Random(47)
        values = [rng.uniform(0.1, 1000.0) for _ in range(5000)]
        direct = QuantileSketch("s")
        half_a, half_b = QuantileSketch("s"), QuantileSketch("s")
        for i, v in enumerate(values):
            direct.observe(v)
            (half_a if i % 2 else half_b).observe(v)
        merged = half_a.copy().merge(half_b)
        assert sketch_signature(merged) == sketch_signature(direct)
        assert merged.sum == pytest.approx(direct.sum)

    def test_merge_rejects_mismatched_accuracy(self):
        a = QuantileSketch("s", relative_error=0.01)
        b = QuantileSketch("s", relative_error=0.05)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_ingestion_order_determinism(self):
        rng = random.Random(48)
        values = [rng.lognormvariate(2.0, 1.5) for _ in range(2000)]
        forward, backward = QuantileSketch("s"), QuantileSketch("s")
        for v in values:
            forward.observe(v)
        for v in reversed(values):
            backward.observe(v)
        assert sketch_signature(forward) == sketch_signature(backward)


class TestSketchRegistryIntegration:
    def test_registered_next_to_histogram(self):
        registry = MetricsRegistry()
        sketch = registry.quantile_sketch("lat", "help")
        assert registry.quantile_sketch("lat") is sketch
        sketch.observe(10.0)
        flat = dict(((name, tuple(sorted(labels.items()))), value)
                    for name, labels, value in registry.collect())
        assert flat[("lat_count", ())] == 1
        assert flat[("lat_p99", ())] == pytest.approx(10.0, rel=0.01)
        assert registry.to_dict()["lat"]["count"] == 1

    def test_labeled_sketch_family(self):
        registry = MetricsRegistry()
        family = registry.quantile_sketch(
            "lat", labels=("op_class",), relative_error=0.02)
        child = family.labels(op_class="write")
        assert child.relative_error == 0.02
        child.observe(5.0)
        family.labels(op_class="read").observe(50.0)
        samples = {(name, labels.get("op_class")): value
                   for name, labels, value in registry.collect()}
        assert samples[("lat_count", "write")] == 1
        assert samples[("lat_p50", "read")] == pytest.approx(50.0, rel=0.02)

    def test_shape_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.quantile_sketch("lat")
        with pytest.raises(ValueError):
            registry.counter("lat")
        with pytest.raises(ValueError):
            registry.quantile_sketch("lat", labels=("pool",))


class TestCriticalPath:
    def test_child_phase_mapping(self):
        assert child_phase("forward-hop pool-2") == PHASE_FORWARD
        assert child_phase("quorum-leg pool-0") == PHASE_QUORUM
        assert child_phase("protocol-read") == PHASE_PROTOCOL
        assert child_phase("protocol-write") == PHASE_PROTOCOL
        assert child_phase("freeze-wait") == PHASE_FREEZE
        assert child_phase("store-read pool-1") == PHASE_STORE_READ
        assert child_phase("read-repair pool-1") is None

    def test_classify_op(self):
        assert classify_op("write", []) == "write"
        assert classify_op("write", [PHASE_FORWARD]) == "forwarded-write"
        assert classify_op("read", [PHASE_QUORUM]) == "quorum-read"
        assert classify_op("read", [PHASE_STORE_READ]) == "follower-read"
        assert classify_op("read", [PHASE_PROTOCOL]) == "protocol-read"

    def test_parallel_quorum_legs_collapse(self):
        legs = [(PHASE_QUORUM, 1.0, 4.0), (PHASE_QUORUM, 1.5, 9.0),
                (PHASE_QUORUM, 1.2, 6.0)]
        collapsed = collapse_parallel(legs)
        assert collapsed == [(PHASE_QUORUM, 1.0, 9.0)]

    def test_gaps_become_queue_wait(self):
        segments = critical_path(0.0, 10.0, [(PHASE_PROTOCOL, 2.0, 7.0)])
        assert [(s.phase, s.start, s.end) for s in segments] == [
            (PHASE_QUEUE, 0.0, 2.0),
            (PHASE_PROTOCOL, 2.0, 7.0),
            (PHASE_QUEUE, 7.0, 10.0),
        ]

    def test_segments_partition_the_window(self):
        intervals = [(PHASE_FORWARD, 1.0, 3.0), (PHASE_PROTOCOL, 2.5, 8.0),
                     (PHASE_QUORUM, 8.5, 9.0)]
        segments = critical_path(0.0, 12.0, intervals)
        assert sum(s.duration for s in segments) == pytest.approx(12.0)
        for earlier, later in zip(segments, segments[1:]):
            assert earlier.end == later.start

    def test_overlap_goes_to_first_phase(self):
        segments = critical_path(0.0, 10.0, [(PHASE_FORWARD, 0.0, 5.0),
                                             (PHASE_PROTOCOL, 3.0, 10.0)])
        durations = phase_durations(segments)
        assert durations[PHASE_FORWARD] == pytest.approx(5.0)
        assert durations[PHASE_PROTOCOL] == pytest.approx(5.0)

    def test_attribute_and_dominant(self):
        fractions = attribute([
            {PHASE_FORWARD: 3.0, PHASE_PROTOCOL: 1.0},
            {PHASE_FORWARD: 5.0, PHASE_PROTOCOL: 1.0},
        ])
        assert fractions[PHASE_FORWARD] == pytest.approx(0.8)
        assert dominant(fractions) == (PHASE_FORWARD, pytest.approx(0.8))
        assert attribute([]) == {}
        assert dominant({}) is None


class TestLatencyTrackerSink:
    def _drive(self, tracker):
        tracker.begin_op("h1", "write", "k", 0.0)
        tracker.child_span("h1", "forward-hop pool-1", "router", 0.0, 2.0)
        tracker.child_span("h1", "protocol-write", "lds", 2.0, 5.0)
        tracker.end_op("h1", 6.0)

    def test_write_decomposition(self):
        tracker = LatencyTracker()
        self._drive(tracker)
        record, = tracker.records
        assert record.op_class == "forwarded-write"
        assert record.total == pytest.approx(6.0)
        assert record.phases == {
            PHASE_FORWARD: pytest.approx(2.0),
            PHASE_PROTOCOL: pytest.approx(3.0),
            PHASE_QUEUE: pytest.approx(1.0),
        }
        assert tracker.sketch("forwarded-write").count == 1
        assert tracker.invoked_by_kind["write"] == 1
        assert tracker.completed_by_kind["write"] == 1

    def test_fallback_renames_protocol_phase(self):
        tracker = LatencyTracker()
        tracker.begin_op("h1", "read", "k", 0.0)
        tracker.child_span("h1", "quorum-leg pool-0", "replica", 0.0, 2.0)
        tracker.child_instant("h1", "quorum-fallback", "replica", 2.0)
        tracker.child_span("h1", "protocol-read", "lds", 2.0, 9.0)
        tracker.end_op("h1", 9.0)
        record, = tracker.records
        assert record.op_class == "quorum-read"
        assert record.phases[PHASE_FALLBACK] == pytest.approx(7.0)
        assert PHASE_PROTOCOL not in record.phases

    def test_stranded_ops_drop_without_latency(self):
        tracker = LatencyTracker()
        tracker.begin_op("h1", "read", "k", 0.0)
        tracker.child_instant("h1", "store-crashed pool-2", "replica", 3.0)
        assert tracker.records == []
        assert tracker.open_count() == 0
        assert tracker.stranded == 1
        assert tracker.completed_by_kind["read"] == 0

    def test_late_replication_apply_feeds_standalone_sketch(self):
        tracker = LatencyTracker()
        self._drive(tracker)
        tracker.child_span("h1", "replication-apply pool-2", "replica",
                           5.0, 405.0)
        assert tracker.replication_apply.count == 1
        assert tracker.replication_apply.p50 == pytest.approx(400.0, rel=0.01)
        record, = tracker.records
        assert "replication-apply" not in record.phases

    def test_jsonl_round_trip(self, tmp_path):
        tracker = LatencyTracker()
        self._drive(tracker)
        path = tmp_path / "ops.jsonl"
        tracker.write_jsonl(path)
        row, = [json.loads(line) for line in path.read_text().splitlines()]
        assert row["op_class"] == "forwarded-write"
        assert row["total"] == pytest.approx(6.0)
        assert set(row["phases"]) == {PHASE_FORWARD, PHASE_PROTOCOL,
                                      PHASE_QUEUE}

    def test_band_attribution(self):
        tracker = LatencyTracker()
        # 99 fast ops dominated by protocol, 1 slow op dominated by the
        # forward hop: the p99+ band must name the forward hop.
        for i in range(99):
            handle = f"f{i}"
            tracker.begin_op(handle, "write", "k", 0.0)
            tracker.child_span(handle, "forward-hop p", "router", 0.0, 1.0)
            tracker.child_span(handle, "protocol-write", "lds", 1.0, 10.0)
            tracker.end_op(handle, 10.0)
        tracker.begin_op("slow", "write", "k", 0.0)
        tracker.child_span("slow", "forward-hop p", "router", 0.0, 90.0)
        tracker.child_span("slow", "protocol-write", "lds", 90.0, 100.0)
        tracker.end_op("slow", 100.0)
        attribution = tracker.attribution("forwarded-write", 0.99)
        assert attribution.dominant_phase == PHASE_FORWARD
        assert tracker.dominant_phase("forwarded-write") == PHASE_FORWARD
        # The whole population is still protocol-dominated.
        assert tracker.attribution("forwarded-write",
                                   0.0).dominant_phase == PHASE_PROTOCOL
        bands = tracker.band_attributions("forwarded-write")
        assert [b.band for b in bands] == ["p50-", "p50-p90", "p90-p99",
                                           "p99+"]

    def test_fanout_forwards_to_all_sinks(self):
        trace = TraceRecorder()
        tracker = LatencyTracker()
        fanout = SpanSinkFanout(trace, tracker)
        fanout.begin_op("h1", "write", "k", 0.0)
        fanout.child_span("h1", "protocol-write", "lds", 0.0, 2.0)
        fanout.child_instant("h1", "read-repair p", "replica", 1.0)
        fanout.end_op("h1", 3.0)
        assert len(tracker.records) == 1
        span, = trace.spans("write ")
        assert span["id"] == "h1"

    def test_fanout_skips_none_sinks(self):
        tracker = LatencyTracker()
        fanout = SpanSinkFanout(None, tracker)
        fanout.begin_op("h1", "read", "k", 0.0)
        fanout.end_op("h1", 1.0)
        assert len(tracker.records) == 1


def build_simulation(telemetry, seed=7):
    keys = [f"obj-{i}" for i in range(16)]
    simulation = ClusterSimulation(
        LDSConfig(n1=3, n2=4, f1=1, f2=1),
        [f"pool-{i}" for i in range(4)], seed=seed,
        writers_per_shard=2, readers_per_shard=2,
        replication=ReplicationConfig(r=3, replication_lag=400.0,
                                      read_quorum=2,
                                      write_ingress="nearest"),
        read_policy="quorum", telemetry=telemetry)
    simulation.ensure_shards(keys)
    simulation.apply(quorum_reads_under_lag(keys, seed=seed))
    simulation.run_until_idle()
    return simulation


class TestLatencyEndToEnd:
    def test_cluster_run_classifies_every_completed_op(self):
        telemetry = Telemetry(latency=True)
        simulation = build_simulation(telemetry)
        tracker = telemetry.latency
        assert tracker.open_count() == 0
        stats = simulation.cluster.router.stats
        by_class = {cls: tracker.sketch(cls).count
                    for cls in tracker.classes()}
        assert by_class["forwarded-write"] == stats.forwarded_writes
        assert by_class["quorum-read"] == stats.quorum_reads
        assert sum(by_class.values()) == len(tracker.records)
        for record in tracker.records:
            assert sum(record.phases.values()) == pytest.approx(record.total)

    def test_harness_latency_kwarg_builds_telemetry(self):
        simulation = ClusterSimulation(
            LDSConfig(n1=3, n2=4, f1=1, f2=1), ["pool-0", "pool-1"],
            seed=3, latency=True)
        assert simulation.telemetry is not None
        assert simulation.telemetry.latency is not None
        simulation.invoke_write("obj-a", b"payload-1")
        simulation.run_until_idle()
        assert simulation.telemetry.latency.sketch("write").count >= 1

    def test_live_matches_offline_trace_reconstruction(self):
        telemetry = Telemetry(trace=True, latency=True)
        simulation = build_simulation(telemetry)
        live = telemetry.latency
        offline = extract_ops(telemetry.trace)
        assert len(offline) == len(live.records)
        live_by_handle = {record.handle: record for record in live.records}
        for op in offline:
            record = live_by_handle[op.handle]
            assert record.op_class == op.op_class
            assert record.total == pytest.approx(op.total, abs=1e-6)
            assert phase_durations(op.client_path()) == pytest.approx(
                record.phases, abs=1e-6)

    def test_run_report_has_latency_section(self):
        telemetry = Telemetry(latency=True, slo_interval=50.0)
        simulation = build_simulation(telemetry)
        report = telemetry.report(simulation)
        assert "-- latency" in report
        assert "-- slo --" in report
        assert "quorum-read:" in report
        assert "p999" in report
