"""Unit tests for the metrics registry instruments."""

from __future__ import annotations

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabeledFamily,
    MetricsRegistry,
    registry_or_default,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_bridge_set_overwrites(self):
        counter = Counter("c")
        counter.inc(9)
        counter._set(3)
        assert counter.value == 3


class TestGauge:
    def test_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.dec(4)
        gauge.inc()
        assert gauge.value == 7

    def test_set_max_ratchets(self):
        gauge = Gauge("g")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5


class TestHistogram:
    def test_count_sum_mean_min_max(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 30.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 32.5
        assert histogram.mean == pytest.approx(32.5 / 3)
        assert histogram.minimum == 0.5
        assert histogram.maximum == 30.0

    def test_bucket_counts_are_cumulative(self):
        histogram = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 2.0, 30.0):
            histogram.observe(value)
        assert histogram.bucket_counts() == [
            (1.0, 1), (10.0, 2), (float("inf"), 3)]

    def test_boundary_value_lands_in_its_bound_bucket(self):
        histogram = Histogram("h", buckets=(5.0,))
        histogram.observe(5.0)
        assert histogram.bucket_counts()[0] == (5.0, 1)

    def test_to_dict_shape(self):
        histogram = Histogram("h")
        histogram.observe(3.0)
        payload = histogram.to_dict()
        assert payload["count"] == 1
        assert "+inf" in payload["buckets"]

    def test_empty_bucket_list_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())


class TestLabeledFamily:
    def test_children_are_cached_per_label_values(self):
        family = LabeledFamily("reads", "", ("pool",), Counter)
        family.labels(pool="a").inc(2)
        family.labels(pool="a").inc()
        family.labels(pool="b").inc()
        assert family.as_dict() == {"a": 3, "b": 1}

    def test_wrong_label_names_rejected(self):
        family = LabeledFamily("reads", "", ("pool",), Counter)
        with pytest.raises(ValueError):
            family.labels(shard="a")

    def test_set_values_replaces_children(self):
        family = LabeledFamily("reads", "", ("pool",), Counter)
        family.labels(pool="stale").inc(7)
        family.set_values({"a": 1, "b": 2})
        assert family.as_dict() == {"a": 1, "b": 2}


class TestMetricsRegistry:
    def test_reregistration_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("reads")
        second = registry.counter("reads")
        assert first is second

    def test_shape_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("reads")
        with pytest.raises(ValueError):
            registry.gauge("reads")
        with pytest.raises(ValueError):
            registry.counter("reads", labels=("pool",))

    def test_collect_flattens_every_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.counter("family", labels=("pool",)).labels(pool="a").inc()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        samples = dict(
            ((name, tuple(sorted(labels.items()))), value)
            for name, labels, value in registry.collect()
        )
        assert samples[("c", ())] == 2
        assert samples[("family", (("pool", "a"),))] == 1
        assert samples[("h_count", ())] == 1
        assert samples[("h_bucket", (("le", 1.0),))] == 1

    def test_render_skips_zeros_by_default(self):
        registry = MetricsRegistry()
        registry.counter("zero")
        registry.counter("hot").inc()
        rendered = registry.render()
        assert "hot 1" in rendered
        assert "zero" not in rendered

    def test_to_dict_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(4)
        registry.counter("family", labels=("pool",)).labels(pool="a").inc()
        payload = registry.to_dict()
        assert payload["g"] == 4
        assert payload["family"] == {"a": 1}

    def test_registry_or_default(self):
        registry = MetricsRegistry()
        assert registry_or_default(registry) is registry
        fresh = registry_or_default(None)
        assert isinstance(fresh, MetricsRegistry)
        assert fresh is not registry

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
