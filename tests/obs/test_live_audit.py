"""The live-audit probe: non-perturbation, verdict reuse, online alarms.

Three properties make the probe trustworthy: a live-audited run is
byte-identical to a bare run (pure observation), its final verdict is
exactly the batch auditor's (the streaming engine is verdict-equivalent
and the harness reuses its state instead of re-checking the history),
and a bad completion surfaces *during* the run -- counter, JSONL row
and trace instant -- not in a post-mortem.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.cluster.replicas import ReplicationConfig
from repro.consistency.history import Operation, READ, WRITE
from repro.consistency.sessions import READ_YOUR_WRITES, check_sessions
from repro.core.config import LDSConfig
from repro.obs import Telemetry
from repro.sim import ClusterSimulation, quorum_reads_under_lag

KEYS = [f"obj-{i}" for i in range(12)]
POOLS = [f"pool-{i}" for i in range(4)]
CONFIG = LDSConfig(n1=3, n2=4, f1=1, f2=1)


def run_quorum(live_audit: bool) -> ClusterSimulation:
    simulation = ClusterSimulation(
        CONFIG, POOLS, seed=7,
        writers_per_shard=2, readers_per_shard=2,
        replication=ReplicationConfig(r=3, replication_lag=400.0,
                                      read_quorum=2),
        read_policy="quorum",
        live_audit=live_audit,
    )
    simulation.ensure_shards(KEYS)
    simulation.apply(quorum_reads_under_lag(KEYS, seed=7))
    return simulation


class TestNonPerturbation:
    def test_live_audit_leaves_the_fingerprint_identical(self):
        bare = run_quorum(False)
        live = run_quorum(True)
        assert bare.kernel.fingerprint == live.kernel.fingerprint

    def test_live_verdict_equals_batch_verdict(self):
        live = run_quorum(True)
        batch = check_sessions(live.history(global_clock=True))
        streamed = live.audit().sessions
        assert streamed.describe() == batch.describe()
        assert Counter(map(str, streamed.violations)) == \
            Counter(map(str, batch.violations))
        assert streamed.unsessioned_skipped == batch.unsessioned_skipped
        assert streamed.unlinearized_skipped == batch.unlinearized_skipped


class TestVerdictSurface:
    def test_audit_reuses_the_streaming_state(self):
        live = run_quorum(True)
        probe = live.telemetry.auditor
        report = live.audit()
        assert report.sessions.operations_checked == \
            probe.auditor.operations_checked
        assert report.availability is not None
        assert report.availability.samples_taken > 0
        # Stable under repeated calls (finalize is idempotent at
        # quiescence, skip counts are recomputed, not accumulated).
        assert live.audit().describe() == report.describe()

    def test_registry_instruments_are_populated(self):
        live = run_quorum(True)
        live.audit()
        probe = live.telemetry.auditor
        assert probe._g_operations.value > 0
        assert probe._g_pairs.value > 0
        assert probe._g_entries_peak.value > 0
        rendered = live.telemetry.registry.render(nonzero_only=True)
        assert "audit_operations_checked" in rendered
        assert "availability_samples" in rendered

    def test_run_report_carries_the_audit_health_section(self):
        live = run_quorum(True)
        report = live.run_report()
        assert "-- audit health --" in report
        assert "live session audit: clean" in report
        assert "availability ok" in report


class TestOnlineDetection:
    def drilled_simulation(self) -> ClusterSimulation:
        """A tiny run whose feed receives one fabricated stale completion
        mid-flight -- the observability analog of the history injections:
        the cluster is healthy, the *feed* carries what a buggy replica
        read path would have reported."""
        telemetry = Telemetry(trace=True, live_audit=True)
        simulation = ClusterSimulation(CONFIG, POOLS[:2], seed=3,
                                       telemetry=telemetry)
        simulation.invoke_write("k", b"v1", session="s")
        simulation.run_until_idle()
        simulation.invoke_write("k", b"v2", session="s")
        simulation.run_until_idle()
        writes = sorted((op for op in simulation.history()
                         if op.kind == WRITE and op.is_complete),
                        key=lambda op: op.invoked_at)
        first = writes[0]
        now = simulation.now
        stale = Operation(
            op_id="k/replica:drill/read-0",
            client_id="replica:drill/reader-0",
            kind=READ, object_id=first.object_id, value=first.value,
            invoked_at=now + 1.0, responded_at=now + 2.0, tag=first.tag,
            session="s",
        )
        simulation.router.notify_replica_completion(stale)
        # Foreground work well past the stale read's invocation, so a
        # probe tick checks it online (watermark = kernel.now).
        simulation.invoke_write("other", b"x", at=now + 80.0)
        simulation.run_until_idle()
        return simulation

    def test_stale_completion_alarms_before_any_report(self):
        simulation = self.drilled_simulation()
        probe = simulation.telemetry.auditor
        # Detected during the run -- no report()/audit() call yet.
        assert probe.rows, "violation not surfaced online"
        row = probe.rows[0]
        assert row["guarantee"] == READ_YOUR_WRITES
        assert row["session"] == "s"
        assert row["key"] == "k"
        assert "k/replica:drill/read-0" in row["operations"]
        counter = probe._c_violations.labels(guarantee=READ_YOUR_WRITES)
        assert counter.value == 1
        instants = [event for event in simulation.telemetry.trace.events
                    if str(event.get("name", "")).startswith("audit-violation")]
        assert instants, "no trace instant for the violation"

    def test_jsonl_export_round_trips(self, tmp_path):
        import json
        simulation = self.drilled_simulation()
        probe = simulation.telemetry.auditor
        path = tmp_path / "violations.jsonl"
        probe.write_jsonl(path)
        rows = [json.loads(line)
                for line in path.read_text().splitlines() if line]
        assert rows and rows[0]["guarantee"] == READ_YOUR_WRITES

    def test_final_report_includes_the_drilled_violation(self):
        simulation = self.drilled_simulation()
        report = simulation.audit()
        assert not report.ok
        assert [v.guarantee for v in report.sessions.violations] == \
            [READ_YOUR_WRITES]


class TestProbeRequirements:
    def test_live_audit_requires_a_kernel(self):
        from repro.obs.live_audit import LiveAuditProbe

        class NoKernel:
            kernel = None

        with pytest.raises(RuntimeError):
            LiveAuditProbe(NoKernel())

    def test_interval_must_be_positive(self):
        from repro.obs.live_audit import LiveAuditProbe
        simulation = ClusterSimulation(CONFIG, POOLS[:2], seed=1)
        with pytest.raises(ValueError):
            LiveAuditProbe(simulation, interval=0.0)
