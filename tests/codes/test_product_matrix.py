"""Unit tests for the product-matrix MBR and MSR codes (reference [25])."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes.base import DecodingError, RepairError
from repro.codes.product_matrix import ProductMatrixMBRCode, ProductMatrixMSRCode


def random_block(size: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8)


class TestMBRConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProductMatrixMBRCode(5, 0, 3)
        with pytest.raises(ValueError):
            ProductMatrixMBRCode(5, 4, 3)
        with pytest.raises(ValueError):
            ProductMatrixMBRCode(4, 2, 4)  # d > n - 1
        with pytest.raises(ValueError):
            ProductMatrixMBRCode(300, 2, 3)

    def test_sizes_match_mbr_point(self):
        code = ProductMatrixMBRCode(n=10, k=3, d=4)
        assert code.block_size == 3 * 4 - 3  # kd - k(k-1)/2 = 9
        assert code.element_size == 4
        assert code.helper_size == 1
        assert code.parameters.is_mbr

    def test_message_matrix_is_symmetric(self):
        code = ProductMatrixMBRCode(n=8, k=3, d=5)
        matrix = code._message_matrix(random_block(code.block_size, seed=3))
        assert matrix.is_symmetric()

    def test_message_matrix_roundtrip(self):
        code = ProductMatrixMBRCode(n=8, k=3, d=5)
        block = random_block(code.block_size, seed=4)
        matrix = code._message_matrix(block)
        k = code.k
        s_block = matrix.submatrix(range(k), range(k))
        t_block = matrix.submatrix(range(k), range(k, code.d))
        assert np.array_equal(code._unpack_message_matrix(s_block, t_block), block)


class TestMBRDecode:
    @pytest.mark.parametrize("n,k,d", [(6, 2, 3), (10, 3, 4), (9, 4, 6), (12, 5, 5)])
    def test_decode_from_any_k_nodes(self, n, k, d):
        code = ProductMatrixMBRCode(n=n, k=k, d=d)
        block = random_block(code.block_size, seed=n * k + d)
        encoded = code.encode_block(block)
        for indices in list(combinations(range(n), k))[:20]:
            subset = {i: encoded[i] for i in indices}
            assert np.array_equal(code.decode_block(subset), block)

    def test_decode_when_d_equals_k(self):
        code = ProductMatrixMBRCode(n=8, k=4, d=4)
        block = random_block(code.block_size, seed=9)
        encoded = code.encode_block(block)
        assert np.array_equal(code.decode_block({i: encoded[i] for i in (1, 3, 5, 7)}), block)

    def test_decode_with_too_few_elements(self):
        code = ProductMatrixMBRCode(n=6, k=3, d=4)
        encoded = code.encode_block(random_block(code.block_size))
        with pytest.raises(DecodingError):
            code.decode_block({0: encoded[0], 1: encoded[1]})

    def test_byte_level_roundtrip(self):
        code = ProductMatrixMBRCode(n=10, k=3, d=4)
        payload = b"a value stored in the back-end layer of LDS"
        elements = code.encode(payload)
        assert code.decode(elements[2:5]) == payload


class TestMBRRepair:
    @pytest.mark.parametrize("n,k,d", [(6, 2, 3), (10, 3, 4), (9, 4, 6)])
    def test_repair_reproduces_exact_element(self, n, k, d):
        code = ProductMatrixMBRCode(n=n, k=k, d=d)
        block = random_block(code.block_size, seed=17)
        encoded = code.encode_block(block)
        failed = 1
        helpers = [i for i in range(n) if i != failed][:d]
        helper_data = {
            i: code.helper_symbols_block(i, encoded[i], failed) for i in helpers
        }
        repaired = code.repair_block(failed, helper_data)
        assert np.array_equal(repaired, encoded[failed])

    def test_repair_from_any_d_helper_subset(self):
        code = ProductMatrixMBRCode(n=8, k=3, d=4)
        encoded = code.encode_block(random_block(code.block_size, seed=23))
        failed = 5
        others = [i for i in range(8) if i != failed]
        for helpers in list(combinations(others, 4))[:15]:
            helper_data = {
                i: code.helper_symbols_block(i, encoded[i], failed) for i in helpers
            }
            assert np.array_equal(code.repair_block(failed, helper_data), encoded[failed])

    def test_helper_computation_is_independent_of_other_helpers(self):
        # The property Section II-c relies on: a helper's symbols depend only
        # on its own element and the failed index.
        code = ProductMatrixMBRCode(n=8, k=3, d=4)
        encoded = code.encode_block(random_block(code.block_size, seed=29))
        helper = 2
        failed = 6
        first = code.helper_symbols_block(helper, encoded[helper], failed)
        second = code.helper_symbols_block(helper, encoded[helper], failed)
        assert np.array_equal(first, second)

    def test_repair_with_too_few_helpers(self):
        code = ProductMatrixMBRCode(n=6, k=2, d=3)
        encoded = code.encode_block(random_block(code.block_size))
        helper_data = {1: code.helper_symbols_block(1, encoded[1], 0)}
        with pytest.raises(RepairError):
            code.repair_block(0, helper_data)

    def test_helper_index_validation(self):
        code = ProductMatrixMBRCode(n=6, k=2, d=3)
        encoded = code.encode_block(random_block(code.block_size))
        with pytest.raises(RepairError):
            code.helper_symbols_block(99, encoded[0], 0)

    def test_byte_level_repair(self):
        code = ProductMatrixMBRCode(n=10, k=3, d=4)
        payload = b"repair me across stripes please, thanks"
        elements = code.encode(payload)
        failed = 7
        helpers = {i: code.helper_data(i, elements[i].data, failed) for i in range(4)}
        repaired = code.repair(failed, helpers)
        assert repaired.data == elements[failed].data


class TestMSR:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProductMatrixMSRCode(5, 1)
        with pytest.raises(ValueError):
            ProductMatrixMSRCode(4, 3)  # needs n >= 2k - 1

    def test_sizes_match_msr_point(self):
        code = ProductMatrixMSRCode(n=10, k=4)
        assert code.d == 6
        assert code.element_size == 3
        assert code.block_size == 12
        assert code.parameters.is_msr

    @pytest.mark.parametrize("n,k", [(5, 2), (8, 3), (10, 4), (12, 5)])
    def test_decode_from_any_k_nodes(self, n, k):
        code = ProductMatrixMSRCode(n=n, k=k)
        block = random_block(code.block_size, seed=n + k)
        encoded = code.encode_block(block)
        for indices in list(combinations(range(n), k))[:15]:
            subset = {i: encoded[i] for i in indices}
            assert np.array_equal(code.decode_block(subset), block)

    @pytest.mark.parametrize("n,k", [(6, 2), (8, 3), (10, 4)])
    def test_repair_reproduces_exact_element(self, n, k):
        code = ProductMatrixMSRCode(n=n, k=k)
        block = random_block(code.block_size, seed=41)
        encoded = code.encode_block(block)
        failed = n - 1
        helpers = [i for i in range(n) if i != failed][: code.d]
        helper_data = {
            i: code.helper_symbols_block(i, encoded[i], failed) for i in helpers
        }
        assert np.array_equal(code.repair_block(failed, helper_data), encoded[failed])

    def test_repair_bandwidth_smaller_than_full_decode(self):
        # MSR repair downloads d*beta symbols, far fewer than k*alpha when alpha > 1.
        code = ProductMatrixMSRCode(n=10, k=4)
        assert code.d * code.helper_size < code.k * code.element_size + code.block_size

    def test_byte_roundtrip(self):
        code = ProductMatrixMSRCode(n=9, k=3)
        payload = b"minimum storage regenerating codes"
        elements = code.encode(payload)
        assert code.decode(elements[4:7]) == payload

    def test_decode_with_too_few_elements(self):
        code = ProductMatrixMSRCode(n=8, k=3)
        encoded = code.encode_block(random_block(code.block_size))
        with pytest.raises(DecodingError):
            code.decode_block({0: encoded[0]})
