"""Unit tests for the shared byte-level code interface (striping, headers)."""

import numpy as np
import pytest

from repro.codes.base import CodedElement, DecodingError, RepairError
from repro.codes.product_matrix import ProductMatrixMBRCode
from repro.codes.reed_solomon import ReedSolomonCode


class TestCodedElement:
    def test_length(self):
        assert len(CodedElement(index=0, data=b"abc")) == 3

    def test_frozen(self):
        element = CodedElement(index=1, data=b"x")
        with pytest.raises(AttributeError):
            element.index = 2  # type: ignore[misc]


class TestStriping:
    def test_stripe_count_minimum_is_one(self):
        code = ReedSolomonCode(4, 2)
        assert code.stripe_count(0) == 2  # 4-byte header over 2-symbol blocks
        assert ProductMatrixMBRCode(6, 3, 4).stripe_count(0) == 1

    def test_stripe_count_grows_with_payload(self):
        code = ReedSolomonCode(6, 4)
        assert code.stripe_count(100) > code.stripe_count(10)

    def test_element_sizes_are_uniform_across_indices(self):
        code = ProductMatrixMBRCode(8, 3, 4)
        elements = code.encode(b"some moderately long payload" * 3)
        sizes = {len(element.data) for element in elements}
        assert len(sizes) == 1

    def test_exact_block_boundary_roundtrip(self):
        code = ReedSolomonCode(5, 3)
        # Payload such that payload + header is an exact multiple of the block.
        payload = bytes(3 * 4 - 4)
        assert code.decode(code.encode(payload)[:3]) == payload

    def test_single_byte_roundtrip(self):
        code = ProductMatrixMBRCode(6, 2, 3)
        assert code.decode(code.encode(b"Z")[2:4]) == b"Z"

    def test_decode_rejects_truncated_padding(self):
        code = ReedSolomonCode(4, 2)
        elements = code.encode(b"hello")
        # Tamper with the length header so it claims more bytes than decoded.
        tampered = []
        for element in elements[:2]:
            data = bytearray(element.data)
            tampered.append(CodedElement(index=element.index, data=bytes(data)))
        # Decoding untampered works; then corrupt the declared length by
        # decoding a truncated symbol stream directly.
        payload = code.decode(tampered)
        assert payload == b"hello"
        with pytest.raises(DecodingError):
            code._strip_payload(np.array([0, 0], dtype=np.uint8))

    def test_strip_payload_rejects_overlong_length(self):
        code = ReedSolomonCode(4, 2)
        bad = np.array([0, 0, 0, 99, 1, 2], dtype=np.uint8)  # claims 99 bytes
        with pytest.raises(DecodingError):
            code._strip_payload(bad)


class TestRepairInterfaceValidation:
    def test_helper_data_with_misaligned_element(self):
        code = ProductMatrixMBRCode(6, 2, 3)
        with pytest.raises(RepairError):
            code.helper_data(1, b"\x01\x02", 0)  # not a multiple of alpha = 3

    def test_repair_with_inconsistent_helper_lengths(self):
        code = ProductMatrixMBRCode(6, 2, 3)
        elements = code.encode(b"abcdef")
        helpers = {i: code.helper_data(i, elements[i].data, 0) for i in (1, 2, 3)}
        helpers[3] = helpers[3] + b"\x00"
        with pytest.raises(RepairError):
            code.repair(0, helpers)

    def test_repair_with_too_few_helpers(self):
        code = ProductMatrixMBRCode(6, 2, 3)
        elements = code.encode(b"abcdef")
        helpers = {1: code.helper_data(1, elements[1].data, 0)}
        with pytest.raises(RepairError):
            code.repair(0, helpers)

    def test_repair_bandwidth_fraction_property(self):
        code = ProductMatrixMBRCode(10, 3, 4)
        assert float(code.repair_bandwidth_fraction) == pytest.approx(4 / 9)
        assert float(code.helper_fraction) == pytest.approx(1 / 9)
