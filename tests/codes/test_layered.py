"""Unit tests for the layered (C, C1, C2) code used by LDS."""

from fractions import Fraction

import pytest

from repro.codes.base import DecodingError, RepairError
from repro.codes.layered import LayeredCode


@pytest.fixture
def layered() -> LayeredCode:
    # Matches LDSConfig(n1=5, n2=6, f1=1, f2=1): k=3, d=4.
    return LayeredCode(n1=5, n2=6, k=3, d=4)


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LayeredCode(n1=0, n2=5, k=1, d=2)
        with pytest.raises(ValueError):
            LayeredCode(n1=5, n2=3, k=2, d=4)  # d > n2
        with pytest.raises(ValueError):
            LayeredCode(n1=2, n2=6, k=3, d=4)  # k > n1
        with pytest.raises(ValueError):
            LayeredCode(n1=5, n2=6, k=3, d=4, operating_point="rs")

    def test_msr_point_requires_d_2k_minus_2(self):
        with pytest.raises(ValueError):
            LayeredCode(n1=5, n2=6, k=3, d=5, operating_point="msr")
        code = LayeredCode(n1=5, n2=6, k=3, d=4, operating_point="msr")
        assert code.operating_point == "msr"

    def test_index_mapping(self, layered):
        assert layered.l1_symbol_index(0) == 0
        assert layered.l2_symbol_index(0) == 5
        assert layered.l2_symbol_index(5) == 10
        with pytest.raises(ValueError):
            layered.l1_symbol_index(5)
        with pytest.raises(ValueError):
            layered.l2_symbol_index(6)


class TestProtocolOperations:
    def test_encode_for_backend_covers_all_l2_servers(self, layered):
        elements = layered.encode_for_backend(b"value")
        assert sorted(elements) == list(range(6))

    def test_decode_from_backend(self, layered):
        value = b"back-end persistent copy"
        elements = layered.encode_for_backend(value)
        subset = {i: elements[i].data for i in (0, 2, 4)}
        assert layered.decode_from_backend(subset) == value

    def test_regenerate_then_decode_from_l1(self, layered):
        value = b"the value a reader reconstructs"
        backend = layered.encode_for_backend(value)
        l1_elements = {}
        for l1_server in range(3):  # k = 3 servers regenerate their symbols
            helpers = {
                l2: layered.helper_data(l2, backend[l2], l1_server) for l2 in range(4)
            }
            regenerated = layered.regenerate_l1_element(l1_server, helpers)
            l1_elements[l1_server] = regenerated.data
        assert layered.decode_from_l1(l1_elements) == value

    def test_regenerate_from_any_d_of_the_l2_servers(self, layered):
        value = b"any d helpers suffice"
        backend = layered.encode_for_backend(value)
        helpers_a = {l2: layered.helper_data(l2, backend[l2], 1) for l2 in (0, 1, 2, 3)}
        helpers_b = {l2: layered.helper_data(l2, backend[l2], 1) for l2 in (2, 3, 4, 5)}
        element_a = layered.regenerate_l1_element(1, helpers_a)
        element_b = layered.regenerate_l1_element(1, helpers_b)
        assert element_a.data == element_b.data

    def test_regenerate_requires_d_helpers(self, layered):
        backend = layered.encode_for_backend(b"x")
        helpers = {0: layered.helper_data(0, backend[0], 0)}
        with pytest.raises(RepairError):
            layered.regenerate_l1_element(0, helpers)

    def test_decode_from_l1_requires_k_elements(self, layered):
        with pytest.raises(DecodingError):
            layered.decode_from_l1({0: b"xx"})

    def test_decode_from_backend_requires_k_elements(self, layered):
        with pytest.raises(DecodingError):
            layered.decode_from_backend({0: b"xx"})


class TestCosts:
    def test_mbr_cost_fractions(self, layered):
        costs = layered.costs
        # k=3, d=4 at the MBR point: B=9, alpha=4, beta=1.
        assert costs.element_fraction == Fraction(4, 9)
        assert costs.helper_fraction == Fraction(1, 9)
        assert costs.regeneration_fraction == Fraction(4, 9)
        assert costs.backend_storage_fraction == Fraction(24, 9)

    def test_msr_costs_are_storage_optimal(self):
        code = LayeredCode(n1=5, n2=6, k=3, d=4, operating_point="msr")
        assert code.costs.element_fraction == Fraction(1, 3)
        # ... but regeneration is more expensive relative to element size.
        assert code.costs.regeneration_fraction > code.costs.helper_fraction

    def test_mbr_regeneration_cheaper_than_msr_relay(self):
        # Remark 1: at the MBR point a regenerated element costs the same as
        # one stored element (alpha = d*beta), which keeps the read cost Theta(1).
        mbr = LayeredCode(n1=5, n2=6, k=3, d=4)
        assert mbr.costs.regeneration_fraction == mbr.costs.element_fraction
