"""Unit tests for the Reed-Solomon code."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes.base import CodedElement, DecodingError
from repro.codes.reed_solomon import ReedSolomonCode


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReedSolomonCode(3, 0)
        with pytest.raises(ValueError):
            ReedSolomonCode(3, 4)
        with pytest.raises(ValueError):
            ReedSolomonCode(300, 4)

    def test_sizes(self):
        code = ReedSolomonCode(6, 3)
        assert code.block_size == 3
        assert code.element_size == 1
        assert code.storage_overhead == pytest.approx(2.0)
        assert code.element_fraction == pytest.approx(1 / 3)


class TestBlockCodec:
    def test_encode_produces_n_elements(self):
        code = ReedSolomonCode(7, 4)
        elements = code.encode_block(np.array([1, 2, 3, 4], dtype=np.uint8))
        assert len(elements) == 7

    def test_decode_from_any_k_elements(self):
        code = ReedSolomonCode(6, 3)
        block = np.array([11, 22, 33], dtype=np.uint8)
        encoded = code.encode_block(block)
        for indices in combinations(range(6), 3):
            subset = {i: encoded[i] for i in indices}
            assert np.array_equal(code.decode_block(subset), block)

    def test_decode_with_fewer_than_k_fails(self):
        code = ReedSolomonCode(6, 3)
        encoded = code.encode_block(np.array([1, 2, 3], dtype=np.uint8))
        with pytest.raises(DecodingError):
            code.decode_block({0: encoded[0], 1: encoded[1]})

    def test_decode_rejects_invalid_index(self):
        code = ReedSolomonCode(4, 2)
        encoded = code.encode_block(np.array([1, 2], dtype=np.uint8))
        with pytest.raises(DecodingError):
            code.decode_block({0: encoded[0], 9: encoded[1]})

    def test_encode_wrong_block_size(self):
        code = ReedSolomonCode(4, 2)
        with pytest.raises(ValueError):
            code.encode_block(np.array([1, 2, 3], dtype=np.uint8))

    def test_systematic_prefix_equals_payload(self):
        code = ReedSolomonCode(6, 3, systematic=True)
        block = np.array([9, 8, 7], dtype=np.uint8)
        encoded = code.encode_block(block)
        assert [int(encoded[i][0]) for i in range(3)] == [9, 8, 7]


class TestByteCodec:
    @pytest.mark.parametrize("payload", [b"", b"x", b"hello world", bytes(range(256)) * 3])
    def test_roundtrip(self, payload):
        code = ReedSolomonCode(8, 5)
        elements = code.encode(payload)
        assert len(elements) == 8
        assert code.decode(elements[:5]) == payload

    def test_roundtrip_from_arbitrary_subset(self):
        code = ReedSolomonCode(7, 3)
        payload = b"erasure coded atomic storage"
        elements = code.encode(payload)
        assert code.decode([elements[1], elements[4], elements[6]]) == payload

    def test_decode_without_elements(self):
        with pytest.raises(DecodingError):
            ReedSolomonCode(4, 2).decode([])

    def test_decode_inconsistent_lengths(self):
        code = ReedSolomonCode(4, 2)
        elements = code.encode(b"abcdef")
        broken = [elements[0], CodedElement(index=1, data=elements[1].data + b"\x00")]
        with pytest.raises(DecodingError):
            code.decode(broken)

    def test_element_length_matches_stripes(self):
        code = ReedSolomonCode(5, 2)
        payload = b"0123456789"  # 10 bytes + 4-byte header -> 7 stripes of 2 symbols
        elements = code.encode(payload)
        assert len(elements[0].data) == code.stripe_count(len(payload))
