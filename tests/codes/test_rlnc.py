"""Unit tests for random linear network codes (functional repair)."""

import numpy as np
import pytest

from repro.codes.base import DecodingError, RepairError
from repro.codes.rlnc import RandomLinearNetworkCode


def make_code(seed=11):
    # MSR-like point: alpha=2, beta=1, B=k*alpha=6 within the cut-set bound for d=4.
    return RandomLinearNetworkCode(n=8, k=3, d=4, alpha=2, beta=1, file_size=6, seed=seed)


def make_block(size=6):
    return np.arange(1, size + 1, dtype=np.uint8)


class TestRLNC:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RandomLinearNetworkCode(n=4, k=5, d=5, alpha=2, beta=1, file_size=4)
        with pytest.raises(ValueError):
            RandomLinearNetworkCode(n=8, k=3, d=4, alpha=1, beta=1, file_size=100)

    def test_parameters_property(self):
        params = make_code().parameters
        assert params.n == 8 and params.k == 3 and params.file_size == 6

    def test_encode_produces_n_elements_of_alpha_rows(self):
        code = make_code()
        elements = code.encode_block(make_block())
        assert len(elements) == 8
        assert all(el.coefficients.shape == (2, 6) for el in elements)

    def test_decode_from_enough_nodes(self):
        code = make_code(seed=5)
        block = make_block()
        elements = code.encode_block(block)
        subset = elements[:4]  # 8 combinations for a 6-dim space: decodes w.h.p.
        if code.can_decode(subset):
            assert np.array_equal(code.decode_block(subset), block)
        else:  # pragma: no cover - astronomically unlikely with this seed
            pytest.skip("random coefficients happened to be rank deficient")

    def test_decode_failure_reports_error(self):
        code = make_code()
        elements = code.encode_block(make_block())
        with pytest.raises(DecodingError):
            code.decode_block(elements[:1])  # only 2 combinations for 6 unknowns

    def test_decode_with_no_elements(self):
        with pytest.raises(DecodingError):
            make_code().decode_block([])

    def test_can_decode_false_for_insufficient_rank(self):
        code = make_code()
        elements = code.encode_block(make_block())
        assert not code.can_decode(elements[:2])

    def test_functional_repair_preserves_decodability(self):
        code = make_code(seed=21)
        block = make_block()
        elements = code.encode_block(block)
        helpers = {i: code.helper_symbols(elements[i]) for i in range(4)}
        repaired = code.repair(new_index=7, helper_messages=helpers)
        # The repaired node together with two originals should usually decode.
        candidates = [repaired, elements[4], elements[5], elements[6]]
        if code.can_decode(candidates):
            assert np.array_equal(code.decode_block(candidates), block)

    def test_repair_requires_d_helpers(self):
        code = make_code()
        elements = code.encode_block(make_block())
        with pytest.raises(RepairError):
            code.repair(new_index=0, helper_messages={1: code.helper_symbols(elements[1])})

    def test_decode_probability_estimate_high(self):
        code = make_code(seed=3)
        probability = code.decode_probability_estimate(trials=20, node_count=4, seed=1)
        assert probability >= 0.9

    def test_decode_probability_estimate_zero_when_impossible(self):
        code = make_code(seed=3)
        probability = code.decode_probability_estimate(trials=5, node_count=1, seed=1)
        assert probability == 0.0
