"""Unit tests for the replication pseudo-code."""

import numpy as np
import pytest

from repro.codes.base import DecodingError
from repro.codes.replication import ReplicationCode


class TestReplication:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReplicationCode(0)
        with pytest.raises(ValueError):
            ReplicationCode(3, block_size=0)

    def test_storage_overhead_is_n(self):
        assert ReplicationCode(5).storage_overhead == pytest.approx(5.0)

    def test_every_replica_is_the_block(self):
        code = ReplicationCode(3, block_size=4)
        block = np.array([1, 2, 3, 4], dtype=np.uint8)
        for replica in code.encode_block(block):
            assert np.array_equal(replica, block)

    def test_decode_from_any_single_replica(self):
        code = ReplicationCode(4, block_size=4)
        block = np.array([9, 9, 9, 9], dtype=np.uint8)
        encoded = code.encode_block(block)
        assert np.array_equal(code.decode_block({2: encoded[2]}), block)

    def test_decode_requires_at_least_one(self):
        with pytest.raises(DecodingError):
            ReplicationCode(3).decode_block({})

    def test_decode_rejects_bad_index(self):
        code = ReplicationCode(2, block_size=2)
        with pytest.raises(DecodingError):
            code.decode_block({5: np.array([1, 2], dtype=np.uint8)})

    def test_byte_roundtrip(self):
        code = ReplicationCode(3, block_size=16)
        payload = b"replicated atomic register"
        elements = code.encode(payload)
        assert code.decode([elements[1]]) == payload

    def test_wrong_block_size_rejected(self):
        code = ReplicationCode(2, block_size=4)
        with pytest.raises(ValueError):
            code.encode_block(np.array([1, 2], dtype=np.uint8))
