"""Unit tests for the regenerating-code parameter framework."""

from fractions import Fraction

import pytest

from repro.codes.regenerating import (
    RegeneratingCodeParameters,
    cut_set_bound,
    mbr_parameters,
    msr_parameters,
)


class TestCutSetBound:
    def test_known_value_mbr_point(self):
        # k=3, d=4, alpha=4, beta=1: B <= 4 + 3 + 2 = 9.
        assert cut_set_bound(3, 4, 4, 1) == 9

    def test_known_value_msr_point(self):
        # k=3, d=4, alpha=2, beta=1: B <= 2 + 2 + 2 = 6.
        assert cut_set_bound(3, 4, 2, 1) == 6

    def test_monotone_in_alpha(self):
        assert cut_set_bound(3, 4, 5, 1) >= cut_set_bound(3, 4, 4, 1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            cut_set_bound(0, 4, 1, 1)
        with pytest.raises(ValueError):
            cut_set_bound(5, 4, 1, 1)
        with pytest.raises(ValueError):
            cut_set_bound(2, 3, -1, 1)


class TestParameters:
    def test_valid_tuple(self):
        params = RegeneratingCodeParameters(n=10, k=3, d=4, alpha=4, beta=1, file_size=9)
        assert params.is_mbr
        assert not params.is_msr

    def test_file_size_above_bound_rejected(self):
        with pytest.raises(ValueError):
            RegeneratingCodeParameters(n=10, k=3, d=4, alpha=4, beta=1, file_size=10)

    def test_ordering_constraints(self):
        with pytest.raises(ValueError):
            RegeneratingCodeParameters(n=4, k=3, d=4, alpha=4, beta=1, file_size=9)
        with pytest.raises(ValueError):
            RegeneratingCodeParameters(n=10, k=5, d=4, alpha=4, beta=1, file_size=9)

    def test_positive_alpha_beta(self):
        with pytest.raises(ValueError):
            RegeneratingCodeParameters(n=10, k=3, d=4, alpha=0, beta=1, file_size=1)

    def test_cost_fractions(self):
        params = mbr_parameters(10, 3, 4)
        assert params.storage_per_node == Fraction(4, 9)
        assert params.helper_per_node == Fraction(1, 9)
        assert params.repair_bandwidth == Fraction(4, 9)
        assert params.total_storage == Fraction(40, 9)


class TestOperatingPoints:
    @pytest.mark.parametrize("k,d", [(1, 1), (2, 3), (3, 4), (5, 9), (80, 80)])
    def test_mbr_point_parameters(self, k, d):
        params = mbr_parameters(n=200, k=k, d=d)
        assert params.alpha == d * params.beta
        assert params.file_size == k * (2 * d - k + 1) // 2
        assert params.is_mbr

    @pytest.mark.parametrize("k,d", [(2, 2), (3, 4), (4, 6), (5, 8)])
    def test_msr_point_parameters(self, k, d):
        params = msr_parameters(n=200, k=k, d=d)
        assert params.file_size == k * params.alpha
        assert params.alpha == (d - k + 1) * params.beta
        assert params.is_msr

    def test_mbr_repair_bandwidth_equals_storage_per_node(self):
        # The defining MBR property: a repair downloads exactly alpha symbols.
        params = mbr_parameters(20, 5, 8)
        assert params.repair_bandwidth == params.storage_per_node

    def test_msr_storage_is_optimal(self):
        params = msr_parameters(20, 5, 8)
        assert params.storage_per_node == Fraction(1, 5)

    def test_mbr_stores_more_than_msr_but_at_most_twice(self):
        # Remark 2 of the paper: MBR storage is at most 2x MSR storage.
        for k, d in [(3, 4), (5, 8), (10, 18), (80, 80)]:
            mbr = mbr_parameters(250, k, d).storage_per_node
            msr = msr_parameters(250, k, d).storage_per_node
            assert msr <= mbr <= 2 * msr
