"""Unit tests for operation histories."""

import pytest

from repro.consistency.history import History, Operation, OperationRecorder, READ, WRITE


def op(op_id, kind, invoked, responded=None, value=None, client="c1", tag=None, obj="object-0"):
    return Operation(op_id=op_id, client_id=client, kind=kind, object_id=obj,
                     value=value, invoked_at=invoked, responded_at=responded, tag=tag)


class TestOperation:
    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            op("o1", "append", 0.0)

    def test_response_before_invocation_rejected(self):
        with pytest.raises(ValueError):
            op("o1", WRITE, 5.0, responded=1.0)

    def test_completeness_and_duration(self):
        complete = op("o1", WRITE, 1.0, responded=4.0)
        pending = op("o2", READ, 2.0)
        assert complete.is_complete and complete.duration == pytest.approx(3.0)
        assert not pending.is_complete and pending.duration is None

    def test_precedence_and_concurrency(self):
        first = op("o1", WRITE, 0.0, responded=1.0)
        second = op("o2", READ, 2.0, responded=3.0)
        overlapping = op("o3", READ, 0.5, responded=2.5)
        assert first.precedes(second)
        assert not second.precedes(first)
        assert first.concurrent_with(overlapping)
        assert overlapping.concurrent_with(second)


class TestHistory:
    def test_filters(self):
        history = History([
            op("w1", WRITE, 0, 1, value=b"a"),
            op("r1", READ, 2, 3, value=b"a"),
            op("r2", READ, 4),
        ])
        assert len(history) == 3
        assert len(history.complete()) == 2
        assert len(history.writes()) == 1
        assert len(history.reads()) == 2

    def test_for_object(self):
        history = History([
            op("w1", WRITE, 0, 1, obj="x"),
            op("w2", WRITE, 0, 1, obj="y"),
        ])
        assert [o.op_id for o in history.for_object("x")] == ["w1"]
        assert history.object_ids() == ["x", "y"]

    def test_well_formedness(self):
        good = History([
            op("w1", WRITE, 0, 1, client="c"),
            op("w2", WRITE, 2, 3, client="c"),
        ])
        bad = History([
            op("w1", WRITE, 0, 5, client="c"),
            op("w2", WRITE, 2, 3, client="c"),
        ])
        assert good.is_well_formed()
        assert not bad.is_well_formed()

    def test_incomplete_then_new_operation_is_ill_formed(self):
        history = History([
            op("w1", WRITE, 0, None, client="c"),
            op("w2", WRITE, 2, 3, client="c"),
        ])
        assert not history.is_well_formed()

    def test_latencies(self):
        history = History([
            op("w1", WRITE, 0, 2),
            op("r1", READ, 0, 5),
            op("r2", READ, 0),
        ])
        assert history.latencies(WRITE) == [2]
        assert history.latencies(READ) == [5]
        assert sorted(history.latencies()) == [2, 5]


class TestRecorder:
    def test_invoke_respond_roundtrip(self):
        recorder = OperationRecorder(initial_value=b"init")
        recorder.invoke("w1", "c1", WRITE, "object-0", b"v", time=1.0)
        recorder.invoke("r1", "c2", READ, "object-0", None, time=2.0)
        recorder.respond("w1", time=3.0, tag="t1")
        recorder.respond("r1", time=4.0, value=b"v", tag="t1")
        history = recorder.history()
        assert recorder.incomplete_count == 0
        assert history.initial_value == b"init"
        reads = history.reads()
        assert reads[0].value == b"v"
        assert reads[0].tag == "t1"

    def test_duplicate_invoke_rejected(self):
        recorder = OperationRecorder()
        recorder.invoke("w1", "c1", WRITE, "object-0", b"v", 0.0)
        with pytest.raises(ValueError):
            recorder.invoke("w1", "c1", WRITE, "object-0", b"v", 1.0)

    def test_respond_without_invoke_rejected(self):
        with pytest.raises(ValueError):
            OperationRecorder().respond("nope", time=1.0)

    def test_incomplete_operations_included_in_history(self):
        recorder = OperationRecorder()
        recorder.invoke("w1", "c1", WRITE, "object-0", b"v", 0.0)
        history = recorder.history()
        assert len(history) == 1
        assert not history.operations[0].is_complete
        assert recorder.incomplete_count == 1

    def test_write_response_keeps_written_value(self):
        recorder = OperationRecorder()
        recorder.invoke("w1", "c1", WRITE, "object-0", b"payload", 0.0)
        recorder.respond("w1", time=1.0, value=None, tag="t")
        assert recorder.history().writes()[0].value == b"payload"
