"""The violation-injection harness proves the session auditor detects
every guarantee class it claims to check."""

from __future__ import annotations

import pytest

from repro.consistency.history import History, Operation, READ, WRITE
from repro.consistency.injection import (
    InjectionError,
    inject_all,
    inject_session_violation,
)
from repro.consistency.sessions import SESSION_GUARANTEES, check_sessions


def op(op_id, kind, invoked, responded, *, obj="k", tag=None, value=None,
       session="s1", client="c"):
    return Operation(op_id=op_id, client_id=client, kind=kind, object_id=obj,
                     value=value, invoked_at=invoked, responded_at=responded,
                     tag=tag, session=session)


@pytest.fixture
def clean_history() -> History:
    """A clean session history dense enough to host every injection site."""
    return History([
        op("w1", WRITE, 0, 1, tag=1, value=b"a"),
        op("r1", READ, 2, 3, tag=1, value=b"a"),
        op("w2", WRITE, 4, 5, tag=2, value=b"b"),
        op("r2", READ, 6, 7, tag=2, value=b"b"),
        op("w3", WRITE, 8, 9, tag=3, value=b"c"),
        op("r3", READ, 10, 11, tag=3, value=b"c"),
    ])


class TestInjectionDetection:
    @pytest.mark.parametrize("guarantee", SESSION_GUARANTEES)
    def test_each_class_is_injected_and_detected(self, clean_history, guarantee):
        assert check_sessions(clean_history).ok, "fixture must start clean"
        injection = inject_session_violation(clean_history, guarantee)
        assert injection.guarantee == guarantee
        report = check_sessions(injection.history)
        flagged = report.for_guarantee(guarantee)
        assert flagged, f"auditor missed the injected {guarantee} violation"
        # The auditor blames the mutated operations themselves.
        assert any(set(injection.mutated) & set(v.operations) for v in flagged)

    def test_inject_all_covers_every_guarantee(self, clean_history):
        injections = inject_all(clean_history)
        assert set(injections) == set(SESSION_GUARANTEES)

    def test_original_history_is_untouched(self, clean_history):
        before = [(o.op_id, o.tag, o.object_id) for o in clean_history]
        inject_all(clean_history)
        after = [(o.op_id, o.tag, o.object_id) for o in clean_history]
        assert before == after

    def test_injection_is_deterministic(self, clean_history):
        for guarantee in SESSION_GUARANTEES:
            first = inject_session_violation(clean_history, guarantee)
            second = inject_session_violation(clean_history, guarantee)
            assert first.mutated == second.mutated
            assert first.description == second.description


class TestEligibility:
    def test_unknown_guarantee_rejected(self, clean_history):
        with pytest.raises(ValueError):
            inject_session_violation(clean_history, "bounded-staleness")

    def test_empty_history_has_no_sites(self):
        with pytest.raises(InjectionError):
            inject_session_violation(History(), "monotonic-reads")

    def test_single_version_history_has_no_read_site(self):
        # Two reads of the same version cannot be perturbed into a
        # monotonic-reads violation by moving versions around.
        history = History([
            op("r1", READ, 0, 1, tag=1),
            op("r2", READ, 2, 3, tag=1),
        ])
        with pytest.raises(InjectionError):
            inject_session_violation(history, "monotonic-reads")


class TestStaleFollowerInjection:
    def replicated_history(self) -> History:
        """A session whose last read was served by a replica follower."""
        return History([
            op("w1", WRITE, 0, 1, tag=1, value=b"a"),
            op("w2", WRITE, 4, 5, tag=2, value=b"b"),
            op("fr1", READ, 8, 9, tag=2, value=b"b",
               client="replica:pool-1/reader-0"),
        ])

    def test_demoted_follower_read_is_detected(self):
        from repro.consistency.injection import (
            inject_stale_follower_read,
            is_follower_read,
        )
        history = self.replicated_history()
        assert check_sessions(history).ok
        injection = inject_stale_follower_read(history)
        assert injection.mutated == ("fr1",)
        assert injection.guarantee == "read-your-writes"
        report = check_sessions(injection.history)
        assert not report.ok
        assert any("fr1" in violation.operations
                   for violation in report.violations)
        mutated = next(o for o in injection.history if o.op_id == "fr1")
        assert is_follower_read(mutated)
        assert mutated.tag == 1  # demoted to w1's version

    def test_monotonic_reads_labelled_when_the_witness_is_a_read(self):
        from repro.consistency.injection import inject_stale_follower_read
        history = History([
            op("w1", WRITE, 0, 1, tag=1, value=b"a", session="writer"),
            op("w2", WRITE, 2, 3, tag=2, value=b"b", session="writer"),
            op("r1", READ, 4, 5, tag=2, value=b"b"),
            op("fr1", READ, 8, 9, tag=2, value=b"b",
               client="replica:pool-1/reader-0"),
        ])
        injection = inject_stale_follower_read(history)
        assert injection.guarantee == "monotonic-reads"
        assert not check_sessions(injection.history).ok

    def test_history_without_follower_reads_has_no_site(self):
        from repro.consistency.injection import (
            InjectionError,
            inject_stale_follower_read,
        )
        history = History([
            op("w1", WRITE, 0, 1, tag=1, value=b"a"),
            op("r1", READ, 2, 3, tag=1, value=b"a"),
        ])
        with pytest.raises(InjectionError, match="follower"):
            inject_stale_follower_read(history)


class TestQuorumDropInjection:
    def quorum_history(self) -> History:
        """A session whose last read was resolved by a quorum merge."""
        return History([
            op("w1", WRITE, 0, 1, tag=1, value=b"a"),
            op("w2", WRITE, 4, 5, tag=2, value=b"b"),
            op("qr1", READ, 8, 9, tag=2, value=b"b",
               client="replica:quorum/reader-0"),
        ])

    def test_dropped_max_version_response_is_detected(self):
        from repro.consistency.injection import (
            inject_quorum_version_drop,
            is_quorum_read,
        )
        history = self.quorum_history()
        assert check_sessions(history).ok
        injection = inject_quorum_version_drop(history)
        assert injection.mutated == ("qr1",)
        assert injection.guarantee == "read-your-writes"
        report = check_sessions(injection.history)
        assert not report.ok
        assert any("qr1" in violation.operations
                   for violation in report.violations)
        mutated = next(o for o in injection.history if o.op_id == "qr1")
        assert is_quorum_read(mutated)
        assert mutated.tag == 1  # the stale member's answer won the merge

    def test_follower_reads_are_not_quorum_sites(self):
        # A history with follower-served (but never quorum-merged) reads
        # must have no quorum-drop site: the two injections target
        # different read paths.
        from repro.consistency.injection import (
            InjectionError,
            inject_quorum_version_drop,
            inject_stale_follower_read,
        )
        history = History([
            op("w1", WRITE, 0, 1, tag=1, value=b"a"),
            op("w2", WRITE, 4, 5, tag=2, value=b"b"),
            op("fr1", READ, 8, 9, tag=2, value=b"b",
               client="replica:pool-1/reader-0"),
        ])
        inject_stale_follower_read(history)  # has a follower site
        with pytest.raises(InjectionError, match="quorum"):
            inject_quorum_version_drop(history)

    def test_quorum_reads_are_also_follower_injection_sites(self):
        # is_follower_read is the broad replica-served class; quorum
        # reads belong to it, so the generic stale-replica drill covers
        # them too.
        from repro.consistency.injection import (
            inject_stale_follower_read,
            is_follower_read,
            is_quorum_read,
        )
        history = self.quorum_history()
        read = next(o for o in history if o.op_id == "qr1")
        assert is_quorum_read(read) and is_follower_read(read)
        assert inject_stale_follower_read(history).mutated == ("qr1",)
