"""Unit tests for the atomicity / linearizability checkers."""

import pytest

from repro.consistency.history import History, Operation, READ, WRITE
from repro.consistency.linearizability import (
    LinearizabilityChecker,
    check_atomicity_by_tags,
)
from repro.core.tags import Tag


def op(op_id, kind, invoked, responded, value=None, tag=None, client=None):
    return Operation(
        op_id=op_id, client_id=client or op_id, kind=kind, object_id="object-0",
        value=value, invoked_at=invoked, responded_at=responded, tag=tag,
    )


class TestTagBasedChecker:
    def test_sequential_history_is_atomic(self):
        history = History([
            op("w1", WRITE, 0, 1, value=b"a", tag=Tag(1, "w")),
            op("r1", READ, 2, 3, value=b"a", tag=Tag(1, "w")),
        ], initial_value=b"init")
        assert check_atomicity_by_tags(history) is None

    def test_read_of_initial_value_is_atomic(self):
        history = History([
            op("r1", READ, 0, 1, value=b"init", tag=Tag.initial()),
        ], initial_value=b"init")
        assert check_atomicity_by_tags(history) is None

    def test_read_of_never_written_value_is_a_violation(self):
        history = History([
            op("r1", READ, 0, 1, value=b"junk", tag=Tag.initial()),
        ], initial_value=b"init")
        violation = check_atomicity_by_tags(history)
        assert violation is not None

    def test_stale_read_after_write_is_a_violation(self):
        # The read starts after the write completed but carries a smaller tag.
        history = History([
            op("w1", WRITE, 0, 1, value=b"new", tag=Tag(5, "w")),
            op("r1", READ, 2, 3, value=b"init", tag=Tag.initial()),
        ], initial_value=b"init")
        violation = check_atomicity_by_tags(history)
        assert violation is not None
        assert "real-time" in violation.description

    def test_duplicate_write_tags_are_a_violation(self):
        history = History([
            op("w1", WRITE, 0, 1, value=b"a", tag=Tag(1, "w")),
            op("w2", WRITE, 2, 3, value=b"b", tag=Tag(1, "w")),
        ])
        violation = check_atomicity_by_tags(history)
        assert violation is not None
        assert "same tag" in violation.description

    def test_read_value_must_match_the_write_with_its_tag(self):
        history = History([
            op("w1", WRITE, 0, 1, value=b"a", tag=Tag(1, "w")),
            op("r1", READ, 2, 3, value=b"b", tag=Tag(1, "w")),
        ])
        assert check_atomicity_by_tags(history) is not None

    def test_concurrent_operations_may_order_either_way(self):
        history = History([
            op("w1", WRITE, 0, 10, value=b"a", tag=Tag(1, "w1")),
            op("w2", WRITE, 0, 10, value=b"b", tag=Tag(2, "w2")),
            op("r1", READ, 5, 12, value=b"b", tag=Tag(2, "w2")),
        ], initial_value=b"init")
        assert check_atomicity_by_tags(history) is None

    def test_missing_tag_reported(self):
        history = History([op("w1", WRITE, 0, 1, value=b"a", tag=None)])
        violation = check_atomicity_by_tags(history)
        assert violation is not None
        assert "missing" in violation.description

    def test_write_read_with_same_tag_ordered_write_first(self):
        # A read that returns a concurrent write's value (same tag) is fine
        # even though the read responds before the write does.
        history = History([
            op("w1", WRITE, 0, 10, value=b"a", tag=Tag(1, "w")),
            op("r1", READ, 1, 5, value=b"a", tag=Tag(1, "w")),
        ], initial_value=b"init")
        assert check_atomicity_by_tags(history) is None

    def test_multi_object_histories_checked_per_object(self):
        history = History([
            Operation(op_id="w1", client_id="c1", kind=WRITE, object_id="x",
                      value=b"a", invoked_at=0, responded_at=1, tag=Tag(1, "w")),
            Operation(op_id="r1", client_id="c2", kind=READ, object_id="y",
                      value=b"init", invoked_at=2, responded_at=3, tag=Tag.initial()),
        ], initial_value=b"init")
        assert check_atomicity_by_tags(history) is None


class TestSearchChecker:
    def test_sequential_history(self):
        history = History([
            op("w1", WRITE, 0, 1, value=b"a"),
            op("r1", READ, 2, 3, value=b"a"),
            op("w2", WRITE, 4, 5, value=b"b"),
            op("r2", READ, 6, 7, value=b"b"),
        ], initial_value=b"init")
        assert LinearizabilityChecker().check(history) is None

    def test_read_of_initial_value(self):
        history = History([op("r1", READ, 0, 1, value=b"init")], initial_value=b"init")
        assert LinearizabilityChecker().check(history) is None

    def test_new_old_inversion_detected(self):
        # r1 sees the new value, then the later r2 sees the old one: not atomic.
        history = History([
            op("w1", WRITE, 0, 20, value=b"new"),
            op("r1", READ, 1, 2, value=b"new"),
            op("r2", READ, 3, 4, value=b"init"),
        ], initial_value=b"init")
        assert LinearizabilityChecker().check(history) is not None

    def test_stale_read_detected(self):
        history = History([
            op("w1", WRITE, 0, 1, value=b"new"),
            op("r1", READ, 2, 3, value=b"init"),
        ], initial_value=b"init")
        assert LinearizabilityChecker().check(history) is not None

    def test_concurrent_reads_may_disagree_in_either_order(self):
        history = History([
            op("w1", WRITE, 0, 10, value=b"new"),
            op("r1", READ, 1, 9, value=b"new"),
            op("r2", READ, 1, 9, value=b"init"),
        ], initial_value=b"init")
        assert LinearizabilityChecker().check(history) is None

    def test_incomplete_write_may_or_may_not_take_effect(self):
        incomplete_visible = History([
            op("w1", WRITE, 0, None, value=b"new"),
            op("r1", READ, 1, 2, value=b"new"),
        ], initial_value=b"init")
        incomplete_invisible = History([
            op("w1", WRITE, 0, None, value=b"new"),
            op("r1", READ, 1, 2, value=b"init"),
        ], initial_value=b"init")
        checker = LinearizabilityChecker()
        assert checker.check(incomplete_visible) is None
        assert checker.check(incomplete_invisible) is None

    def test_agrees_with_tag_checker_on_lds_like_history(self):
        history = History([
            op("w1", WRITE, 0, 5, value=b"a", tag=Tag(1, "w1")),
            op("w2", WRITE, 3, 8, value=b"b", tag=Tag(2, "w2")),
            op("r1", READ, 6, 9, value=b"b", tag=Tag(2, "w2")),
            op("r2", READ, 10, 12, value=b"b", tag=Tag(2, "w2")),
        ], initial_value=b"init")
        assert check_atomicity_by_tags(history) is None
        assert LinearizabilityChecker().check(history) is None

    def test_state_budget_guard(self):
        operations = [
            op(f"w{i}", WRITE, 0, 100, value=bytes([i])) for i in range(12)
        ]
        history = History(operations, initial_value=b"init")
        checker = LinearizabilityChecker(max_states=5)
        with pytest.raises(RuntimeError):
            checker.check(history)

    def test_is_linearizable_convenience(self):
        history = History([op("r1", READ, 0, 1, value=b"init")], initial_value=b"init")
        assert LinearizabilityChecker().is_linearizable(history)


class TestIncompleteOperations:
    """The checker owns the drop-incomplete semantics: raw recorder
    histories (pending operations carry no tag) must be checkable without
    pre-filtering and without crashing."""

    def test_raw_history_with_pending_write_passes(self):
        history = History([
            op("w1", WRITE, 0, 1, value=b"a", tag=Tag(1, "w0")),
            op("r1", READ, 2, 3, value=b"a", tag=Tag(1, "w0")),
            Operation(op_id="w2", client_id="w2", kind=WRITE,
                      object_id="object-0", value=b"b", invoked_at=4,
                      responded_at=None, tag=None),
        ], initial_value=b"init")
        assert check_atomicity_by_tags(history) is None

    def test_tag_order_treats_untagged_ops_as_unordered(self):
        from repro.consistency.linearizability import _tag_order

        tagged = op("w1", WRITE, 0, 1, value=b"a", tag=Tag(1, "w0"))
        untagged = op("w2", WRITE, 2, 3, value=b"b", tag=None)
        assert not _tag_order(tagged, untagged)
        assert not _tag_order(untagged, tagged)
