"""The cross-shard session auditor on handcrafted histories."""

from __future__ import annotations

import pytest

from repro.consistency.history import History, Operation, READ, WRITE
from repro.consistency.sessions import (
    MONOTONIC_READS,
    MONOTONIC_WRITES,
    READ_YOUR_WRITES,
    SESSION_GUARANTEES,
    WRITES_FOLLOW_READS,
    check_sessions,
    operation_version,
    split_object_id,
)


def op(op_id, kind, invoked, responded, *, obj="k", tag=None, value=None,
       session="s1", client="c"):
    return Operation(op_id=op_id, client_id=client, kind=kind, object_id=obj,
                     value=value, invoked_at=invoked, responded_at=responded,
                     tag=tag, session=session)


class TestObjectIdParsing:
    def test_plain_key_is_epoch_zero(self):
        assert split_object_id("user:42") == ("user:42", 0)

    def test_epoch_suffix_parsed(self):
        assert split_object_id("user:42@e3") == ("user:42", 3)

    def test_non_numeric_suffix_is_part_of_the_key(self):
        assert split_object_id("user@exp") == ("user@exp", 0)

    def test_version_orders_epochs_before_tags(self):
        old = op("r1", READ, 0, 1, obj="k", tag=99)
        new = op("r2", READ, 2, 3, obj="k@e1", tag=0)
        assert operation_version(old) < operation_version(new)


class TestCleanHistories:
    def test_empty_history_is_ok(self):
        report = check_sessions(History())
        assert report.ok and report.sessions_checked == 0

    def test_single_session_single_key_progression(self):
        history = History([
            op("w1", WRITE, 0, 1, tag=1, value=b"a"),
            op("r1", READ, 2, 3, tag=1, value=b"a"),
            op("w2", WRITE, 4, 5, tag=2, value=b"b"),
            op("r2", READ, 6, 7, tag=2, value=b"b"),
        ])
        report = check_sessions(history)
        assert report.ok
        assert report.sessions_checked == 1
        assert report.operations_checked == 4
        # Each op is checked against the running max prior write/read:
        # r1 vs {w1}; w2 vs {w1, r1}; r2 vs {w2, r1}.
        assert report.pairs_checked == 5

    def test_concurrent_operations_are_unconstrained(self):
        # The overlapping read may return the older version: no precedence.
        history = History([
            op("w1", WRITE, 0, 10, tag=5, value=b"new"),
            op("r1", READ, 5, 12, tag=1, value=b"old"),
        ])
        assert check_sessions(history).ok

    def test_different_keys_are_independent(self):
        history = History([
            op("w1", WRITE, 0, 1, obj="a", tag=9, value=b"x"),
            op("r1", READ, 2, 3, obj="b", tag=1, value=b"y"),
        ])
        assert check_sessions(history).ok

    def test_different_sessions_are_independent(self):
        history = History([
            op("r1", READ, 0, 1, tag=5, session="s1"),
            op("r2", READ, 2, 3, tag=1, session="s2"),
        ])
        assert check_sessions(history).ok

    def test_migration_epoch_reset_is_not_a_regression(self):
        # Tags restart in a new epoch; the epoch component keeps the
        # version order monotone across the migration boundary.
        history = History([
            op("w1", WRITE, 0, 1, obj="k", tag=7, value=b"a"),
            op("r1", READ, 2, 3, obj="k", tag=7, value=b"a"),
            op("r2", READ, 10, 11, obj="k@e1", tag=0, value=b"a"),
            op("w2", WRITE, 12, 13, obj="k@e1", tag=1, value=b"b"),
        ])
        assert check_sessions(history).ok


class TestViolationDetection:
    def test_monotonic_reads(self):
        history = History([
            op("r1", READ, 0, 1, tag=5),
            op("r2", READ, 2, 3, tag=3),
        ])
        report = check_sessions(history)
        [violation] = report.violations
        assert violation.guarantee == MONOTONIC_READS
        assert violation.operations == ("r1", "r2")
        assert violation.session == "s1" and violation.key == "k"

    def test_monotonic_writes(self):
        history = History([
            op("w1", WRITE, 0, 1, tag=5, value=b"a"),
            op("w2", WRITE, 2, 3, tag=5, value=b"b"),  # duplicate version
        ])
        report = check_sessions(history)
        [violation] = report.violations
        assert violation.guarantee == MONOTONIC_WRITES

    def test_read_your_writes(self):
        history = History([
            op("w1", WRITE, 0, 1, tag=5, value=b"new"),
            op("r1", READ, 2, 3, tag=2, value=b"old"),
        ])
        report = check_sessions(history)
        [violation] = report.violations
        assert violation.guarantee == READ_YOUR_WRITES

    def test_writes_follow_reads(self):
        history = History([
            op("r1", READ, 0, 1, tag=5),
            op("w1", WRITE, 2, 3, tag=4, value=b"x"),
        ])
        report = check_sessions(history)
        [violation] = report.violations
        assert violation.guarantee == WRITES_FOLLOW_READS

    def test_epoch_regression_across_migration_is_detected(self):
        # A read that lands back in the old epoch's versions after the
        # session already observed the new epoch.
        history = History([
            op("r1", READ, 0, 1, obj="k@e1", tag=0),
            op("r2", READ, 2, 3, obj="k", tag=99),
        ])
        report = check_sessions(history)
        assert report.for_guarantee(MONOTONIC_READS)

    def test_every_offending_operation_reported_not_just_the_first(self):
        history = History([
            op("r1", READ, 0, 1, tag=5),
            op("r2", READ, 2, 3, tag=3),
            op("r3", READ, 4, 5, tag=1),
        ])
        report = check_sessions(history)
        violations = report.for_guarantee(MONOTONIC_READS)
        # Both regressing reads are blamed against the strongest witness r1.
        assert [v.operations for v in violations] == [("r1", "r2"), ("r1", "r3")]
        assert str(report.violations[0])  # human-readable rendering

    def test_report_describe_mentions_violations(self):
        history = History([
            op("r1", READ, 0, 1, tag=5),
            op("r2", READ, 2, 3, tag=3),
        ])
        assert "violation" in check_sessions(history).describe()


class TestSkipping:
    def test_unsessioned_operations_are_skipped(self):
        history = History([
            op("r1", READ, 0, 1, tag=5, session=None),
            op("r2", READ, 2, 3, tag=3, session=None),
        ])
        report = check_sessions(history)
        assert report.ok
        assert report.unsessioned_skipped == 2

    def test_incomplete_and_untagged_operations_are_skipped(self):
        history = History([
            op("w1", WRITE, 0, None, tag=None, value=b"a"),  # incomplete
            op("r1", READ, 2, 3, tag=None),  # responded but unlinearized
            op("r2", READ, 4, 5, tag=1),
        ])
        report = check_sessions(history)
        assert report.ok
        assert report.unlinearized_skipped == 2
        assert report.operations_checked == 1


class TestHistorySessions:
    def test_sessions_helper_lists_distinct_non_none(self):
        history = History([
            op("r1", READ, 0, 1, tag=1, session="a"),
            op("r2", READ, 2, 3, tag=1, session=None),
            op("r3", READ, 4, 5, tag=1, session="b"),
            op("r4", READ, 6, 7, tag=1, session="a"),
        ])
        assert history.sessions() == ["a", "b"]


def test_guarantee_constants_are_distinct():
    assert len(set(SESSION_GUARANTEES)) == 4
