"""Differential tests: streaming session auditor vs the batch auditor.

The streaming auditor's whole claim is verdict-equivalence -- same
violations, same counts, same witnesses as ``check_sessions`` on any
complete history -- at bounded memory.  These tests pin that claim
three ways: on randomized synthetic histories (eligibility edge cases:
unsessioned, incomplete, untagged, multi-epoch), on the merged history
of every shipped scenario, and on every injection drill (the histories
*designed* to contain violations).  The retention tests pin the other
half of the claim: tracked state stays flat when the run gets 10x
longer.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.cluster.replicas import ReplicationConfig
from repro.consistency.history import History, Operation, READ, WRITE
from repro.consistency.injection import (
    inject_all,
    inject_quorum_version_drop,
    inject_stale_follower_read,
)
from repro.consistency.sessions import SESSION_GUARANTEES, check_sessions
from repro.consistency.streaming import StreamingSessionAuditor, replay_history
from repro.core.config import LDSConfig
from repro.sim import (
    ClusterSimulation,
    correlated_pool_failure,
    degraded_reads_during_catch_up,
    flash_crowd,
    forwarded_writes_during_failover,
    migration_under_load,
    quorum_reads_under_lag,
    repair_under_load,
    replica_failover_under_load,
)

KEYS = [f"obj-{i}" for i in range(12)]
POOLS = [f"pool-{i}" for i in range(4)]
CONFIG = LDSConfig(n1=3, n2=4, f1=1, f2=1)


def assert_equivalent(history: History, *, advance_every: int = 16) -> None:
    """The one assertion: replaying == batch, field by field."""
    batch = check_sessions(history)
    streamed = replay_history(history, advance_every=advance_every).report()
    # Violations as a multiset: group order may differ, content may not.
    # str() covers guarantee, session, key, description and the witness
    # pair, so equal multisets mean equal witnesses too.
    assert Counter(map(str, streamed.violations)) == \
        Counter(map(str, batch.violations))
    assert streamed.sessions_checked == batch.sessions_checked
    assert streamed.operations_checked == batch.operations_checked
    assert streamed.pairs_checked == batch.pairs_checked
    assert streamed.unsessioned_skipped == batch.unsessioned_skipped
    assert streamed.unlinearized_skipped == batch.unlinearized_skipped


# -- synthetic histories ------------------------------------------------------------


def random_history(seed: int) -> History:
    """Adversarial synthetic history: overlapping sessions, epochs,
    incomplete / untagged / unsessioned operations, version regressions."""
    rng = random.Random(seed)
    sessions = ["s0", "s1", "s2", None]
    keys = ["a", "b"]
    ops = []
    clock = 0.0
    for index in range(rng.randrange(20, 60)):
        clock += rng.random() * 4.0
        invoked = clock
        responded = None if rng.random() < 0.1 else invoked + rng.random() * 8.0
        tag = None if rng.random() < 0.1 else rng.randrange(0, 6)
        key = rng.choice(keys)
        epoch = rng.randrange(0, 2)
        object_id = key if epoch == 0 else f"{key}@e{epoch}"
        ops.append(Operation(
            op_id=f"op-{index}",
            client_id=f"client-{index % 3}",
            kind=rng.choice((READ, WRITE)),
            object_id=object_id,
            value=b"v",
            invoked_at=invoked,
            responded_at=responded,
            tag=None if responded is None else tag,
            session=rng.choice(sessions),
        ))
    return History(ops)


@pytest.mark.parametrize("seed", range(12))
def test_random_histories_are_verdict_equivalent(seed):
    assert_equivalent(random_history(seed))


@pytest.mark.parametrize("advance_every", [1, 3, 1000])
def test_watermark_cadence_does_not_change_the_verdict(advance_every):
    # From one advance per arrival to never advancing before finalize.
    for seed in range(4):
        assert_equivalent(random_history(seed), advance_every=advance_every)


def test_equal_version_witness_tie_breaks_match_batch():
    # Two same-session writes with the same version, then a read: the
    # batch sweep keeps the *first* absorbed witness (strict > replace),
    # so the blamed pair must name it.
    ops = [
        Operation(op_id="w1", client_id="c", kind=WRITE, object_id="k",
                  value=b"v", invoked_at=0.0, responded_at=1.0, tag=3,
                  session="s"),
        Operation(op_id="w2", client_id="c", kind=WRITE, object_id="k",
                  value=b"v", invoked_at=2.0, responded_at=3.0, tag=3,
                  session="s"),
        Operation(op_id="r1", client_id="c", kind=READ, object_id="k",
                  value=b"v", invoked_at=4.0, responded_at=5.0, tag=1,
                  session="s"),
    ]
    history = History(ops)
    assert_equivalent(history)
    streamed = replay_history(history).report()
    assert len(streamed.violations) == 2  # w2 itself, and the stale read
    read_violations = [v for v in streamed.violations if "r1" in v.operations]
    assert read_violations and read_violations[0].operations == ("w1", "r1")


def test_out_of_order_consumption_is_tolerated():
    # Migration drains complete operations with response times beyond the
    # kernel clock, so the feed is not globally sorted by responded_at.
    # Consuming in a scrambled order with conservative watermarks must
    # still produce the batch verdict.
    history = random_history(99)
    batch = check_sessions(history)
    auditor = StreamingSessionAuditor()
    ops = list(history)
    random.Random(0).shuffle(ops)
    for op in ops:
        auditor.consume(op)
    auditor.finalize()
    report = auditor.report()
    assert Counter(map(str, report.violations)) == \
        Counter(map(str, batch.violations))
    assert report.pairs_checked == batch.pairs_checked


# -- every shipped scenario ----------------------------------------------------------


def scenario_simulations():
    """(name, builder) for all eight shipped scenarios, scaled for tests."""
    def plain(scenario, **kwargs):
        def build():
            simulation = ClusterSimulation(CONFIG, POOLS, seed=11,
                                           repair_min_interval=10.0, **kwargs)
            simulation.apply(scenario)
            return simulation
        return build

    def replicated(scenario, *, seed, read_policy, replication, **kwargs):
        def build():
            simulation = ClusterSimulation(
                CONFIG, POOLS, seed=seed, replication=replication,
                read_policy=read_policy, **kwargs)
            simulation.ensure_shards(KEYS)
            simulation.apply(scenario)
            return simulation
        return build

    failover_replication = ReplicationConfig(r=3, replication_lag=25.0,
                                             failover_detection_delay=12.0)
    return [
        ("repair-under-load", plain(
            repair_under_load(KEYS, "pool-0/l2-0", seed=11, operations=120,
                              duration=600.0, fail_at=120.0))),
        ("migration-under-load", plain(
            migration_under_load(KEYS, "pool-9", seed=11, operations=120,
                                 duration=600.0, join_at=150.0))),
        ("correlated-pool-failure", plain(
            correlated_pool_failure(KEYS, "pool-0", seed=11, operations=120,
                                    duration=600.0, fail_at=120.0,
                                    stagger=5.0))),
        ("flash-crowd", plain(
            flash_crowd(KEYS, seed=11, operations=100, crowd_operations=120,
                        shift_at=250.0, duration=400.0, latency_scale=1.5),
            writers_per_shard=2, readers_per_shard=2)),
        ("replica-failover-under-load", replicated(
            replica_failover_under_load(KEYS, "pool-0", seed=7),
            seed=7, read_policy="round-robin",
            replication=failover_replication)),
        ("degraded-reads-during-catch-up", replicated(
            degraded_reads_during_catch_up(KEYS, "pool-1", seed=3),
            seed=3, read_policy="least-loaded",
            writers_per_shard=2, readers_per_shard=2,
            replication=ReplicationConfig(r=3, replication_lag=30.0,
                                          failover_detection_delay=20.0,
                                          catch_up_per_record=2.0))),
        ("quorum-reads-under-lag", replicated(
            quorum_reads_under_lag(KEYS, seed=7),
            seed=7, read_policy="quorum",
            writers_per_shard=2, readers_per_shard=2,
            replication=ReplicationConfig(r=3, replication_lag=400.0,
                                          read_quorum=2))),
        ("forwarded-writes-during-failover", replicated(
            forwarded_writes_during_failover(KEYS, "pool-0", seed=5),
            seed=5, read_policy="round-robin",
            replication=ReplicationConfig(r=3, replication_lag=25.0,
                                          failover_detection_delay=12.0,
                                          write_ingress="nearest"))),
    ]


SCENARIOS = scenario_simulations()


@pytest.fixture(scope="module")
def scenario_histories():
    """Each scenario run once per module; the tests share the histories."""
    return {name: build().history(global_clock=True)
            for name, build in SCENARIOS}


@pytest.mark.parametrize("name", [name for name, _ in SCENARIOS])
def test_every_shipped_scenario_is_verdict_equivalent(name,
                                                      scenario_histories):
    assert_equivalent(scenario_histories[name])


# -- every injection drill -----------------------------------------------------------


@pytest.mark.parametrize("guarantee", SESSION_GUARANTEES)
def test_injected_session_violations_are_verdict_equivalent(
        guarantee, scenario_histories):
    history = scenario_histories["repair-under-load"]
    injection = inject_all(history)[guarantee]
    assert_equivalent(injection.history)
    streamed = replay_history(injection.history).report()
    flagged = streamed.for_guarantee(guarantee)
    assert any(set(injection.mutated) & set(v.operations) for v in flagged)


def test_injected_stale_follower_read_is_verdict_equivalent(
        scenario_histories):
    injection = inject_stale_follower_read(
        scenario_histories["replica-failover-under-load"])
    assert_equivalent(injection.history)


def test_injected_quorum_drop_is_verdict_equivalent(scenario_histories):
    injection = inject_quorum_version_drop(
        scenario_histories["quorum-reads-under-lag"])
    assert_equivalent(injection.history)


# -- retention ----------------------------------------------------------------------


def long_stream(operations: int) -> History:
    """A dense single-key workload: the batch auditor's worst case (one
    hot group holding every operation)."""
    ops = []
    clock = 0.0
    tag = 0
    for index in range(operations):
        clock += 1.0
        kind = WRITE if index % 3 == 0 else READ
        if kind == WRITE:
            tag += 1
        ops.append(Operation(
            op_id=f"op-{index}", client_id="c", kind=kind, object_id="hot",
            value=b"v", invoked_at=clock, responded_at=clock + 0.5, tag=tag,
            session="s"))
    return History(ops)


def test_tracked_state_is_flat_in_run_length():
    peaks = {}
    for scale in (1, 10):
        auditor = replay_history(long_stream(200 * scale), advance_every=16)
        peaks[scale] = (auditor.peak_tracked_entries, auditor.peak_groups)
        assert auditor.operations_checked == 200 * scale
    short_entries, short_groups = peaks[1]
    long_entries, long_groups = peaks[10]
    # The acceptance bound: 10x the operations, at most 2x the peak state.
    assert long_entries <= 2 * short_entries, peaks
    assert long_groups <= short_groups, peaks


def test_tracked_state_drains_to_settled_maxima():
    auditor = replay_history(long_stream(500), advance_every=8)
    # After finalize the unchecked queue is empty and the folded maxima
    # carry the group; entries still held are only the un-foldable tail.
    assert auditor.tracked_entries < 50
    assert auditor.tracked_groups == 1
