"""Tests for the L2 repair extension (the paper's future-work item)."""

import pytest

from repro.codes.base import RepairError
from repro.core.config import LDSConfig
from repro.core.repair import BackendRepairCoordinator
from repro.core.system import LDSSystem
from repro.core.tags import Tag
from repro.net.latency import FixedLatencyModel


def build_system(n1=5, n2=6, f1=1, f2=1):
    config = LDSConfig(n1=n1, n2=n2, f1=f1, f2=f2)
    return LDSSystem(config, num_writers=2, num_readers=2,
                     latency_model=FixedLatencyModel())


class TestRepairBasics:
    def test_repair_restores_exact_element_and_tag(self):
        system = build_system()
        result = system.write(b"value to survive repair")
        system.run_until_idle()
        original = system.l2_servers[2].stored_element.data
        system.crash_l2(2)
        report = BackendRepairCoordinator(system).repair(2)
        repaired_server = system.l2_servers[2]
        assert not repaired_server.crashed
        assert repaired_server.stored_tag == result.tag == report.restored_tag
        assert repaired_server.stored_element.data == original

    def test_repair_download_is_d_helper_fractions(self):
        system = build_system()
        system.write(b"x")
        system.run_until_idle()
        system.crash_l2(0)
        report = BackendRepairCoordinator(system).repair(0)
        expected = system.config.d * float(system.code.costs.helper_fraction)
        assert report.download_fraction == pytest.approx(expected)
        assert len(report.helpers_used) == system.config.d

    def test_repaired_server_participates_in_future_reads(self):
        system = build_system()
        system.write(b"before crash")
        system.run_until_idle()
        system.crash_l2(3)
        BackendRepairCoordinator(system).repair(3)
        system.write(b"after repair", writer=1)
        system.run_until_idle()
        assert system.read().value == b"after repair"
        assert system.l2_servers[3].stored_tag.z == 2

    def test_repair_of_initial_state_server(self):
        system = build_system()
        system.crash_l2(1)
        report = BackendRepairCoordinator(system).repair(1)
        assert report.restored_tag == Tag.initial()
        assert system.read().value == system.config.initial_value

    def test_repair_all_restores_every_crashed_server(self):
        system = build_system(n1=5, n2=9, f1=1, f2=2)
        system.write(b"durable")
        system.run_until_idle()
        system.crash_l2(0)
        system.crash_l2(5)
        reports = BackendRepairCoordinator(system).repair_all()
        assert sorted(report.repaired_index for report in reports) == [0, 5]
        assert all(not server.crashed for server in system.l2_servers)
        assert system.read().value == b"durable"


class TestRepairValidation:
    def test_cannot_repair_an_alive_server(self):
        system = build_system()
        with pytest.raises(RepairError):
            BackendRepairCoordinator(system).repair(0)

    def test_invalid_index_rejected(self):
        system = build_system()
        with pytest.raises(RepairError):
            BackendRepairCoordinator(system).repair(42)

    def test_repair_needs_d_survivors(self):
        system = build_system()
        for index in range(3):  # crash more than the protocol budget
            system.crash_l2(index)
        with pytest.raises(RepairError):
            BackendRepairCoordinator(system).repair(0)

    def test_crashed_indices_listing(self):
        system = build_system()
        assert BackendRepairCoordinator(system).crashed_l2_indices() == []
        system.crash_l2(4)
        assert BackendRepairCoordinator(system).crashed_l2_indices() == [4]

    def test_completed_writes_survive_f2_crashes_plus_repair(self):
        # The guarantee the module docstring states: a write acknowledged by
        # the L2 quorum is never lost by crashing f2 servers and repairing them.
        system = build_system(n1=5, n2=9, f1=1, f2=2)
        result = system.write(b"never lost")
        system.run_until_idle()
        system.crash_l2(1)
        system.crash_l2(7)
        coordinator = BackendRepairCoordinator(system)
        for report in coordinator.repair_all():
            assert report.restored_tag >= result.tag
        assert system.read().value == b"never lost"
