"""Tests that measured communication / storage costs match Lemmas V.2 and V.3."""

import pytest

from repro.core.analysis import (
    mbr_read_cost,
    mbr_storage_cost_l2,
    mbr_write_cost,
)
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import FixedLatencyModel


def build_system(n1=5, n2=6, f1=1, f2=1, **kwargs):
    config = LDSConfig(n1=n1, n2=n2, f1=f1, f2=f2)
    return LDSSystem(config, num_writers=2, num_readers=2,
                     latency_model=FixedLatencyModel(), **kwargs), config


class TestWriteCost:
    def test_write_cost_matches_lemma_v2_exactly(self):
        system, config = build_system()
        result = system.write(b"measure me")
        system.run_until_idle()  # let the internal write-to-L2 traffic finish
        measured = system.operation_cost(result.op_id)
        expected = mbr_write_cost(config.n1, config.n2, config.k, config.d)
        assert measured == pytest.approx(expected, rel=1e-9)

    def test_write_cost_identical_across_writes(self):
        system, _ = build_system()
        costs = []
        for index in range(3):
            result = system.write(bytes([index + 1]) * 4)
            system.run_until_idle()
            costs.append(system.operation_cost(result.op_id))
        assert max(costs) == pytest.approx(min(costs))

    @pytest.mark.parametrize("n1,n2,f1,f2", [(3, 4, 1, 1), (5, 6, 1, 1), (7, 9, 2, 2)])
    def test_write_cost_formula_across_configurations(self, n1, n2, f1, f2):
        system, config = build_system(n1=n1, n2=n2, f1=f1, f2=f2)
        result = system.write(b"sweep")
        system.run_until_idle()
        expected = mbr_write_cost(n1, n2, config.k, config.d)
        assert system.operation_cost(result.op_id) == pytest.approx(expected, rel=1e-9)

    def test_write_cost_grows_linearly_with_n1(self):
        costs = []
        for n in (4, 8, 12):
            system, config = build_system(n1=n, n2=n, f1=(n - 2) // 2, f2=(n - 1) // 3)
            result = system.write(b"scaling")
            system.run_until_idle()
            costs.append(system.operation_cost(result.op_id) / n)
        # Cost per server stays within a constant factor: Theta(n1).
        assert max(costs) / min(costs) < 2.5


class TestReadCost:
    def test_quiescent_read_cost_matches_lemma_v2_delta_zero(self):
        system, config = build_system()
        system.write(b"quiesced value")
        system.run_until_idle()
        result = system.read()
        measured = system.operation_cost(result.op_id)
        expected = mbr_read_cost(config.n1, config.n2, config.k, config.d, delta=0)
        assert measured == pytest.approx(expected, rel=1e-9)

    def test_concurrent_read_cost_is_bounded_by_delta_positive_formula(self):
        system, config = build_system()
        system.invoke_write(b"overlapping write", writer=0, at=0.0)
        read_op = system.invoke_read(reader=0, at=1.0)
        system.run_until_idle()
        measured = system.operation_cost(read_op)
        upper = mbr_read_cost(config.n1, config.n2, config.k, config.d, delta=1)
        assert measured <= upper + 1e-9

    def test_concurrent_read_is_cheaper_than_or_equal_to_worst_case(self):
        # When served directly from L1 lists the read moves full values
        # (cost <= n1) plus any regeneration traffic that still happened.
        system, config = build_system()
        system.invoke_write(b"v", writer=0, at=0.0)
        read_op = system.invoke_read(reader=0, at=0.5)
        system.run_until_idle()
        assert system.operation_cost(read_op) <= (
            mbr_read_cost(config.n1, config.n2, config.k, config.d, delta=1) + 1e-9
        )

    def test_quiescent_read_cost_stays_flat_as_n_grows(self):
        # Keep k = d = n/2 (k proportional to n, as the paper assumes) and
        # check that the read cost converges to a constant instead of growing
        # linearly with the system size.
        sizes = (4, 8, 16)
        costs = []
        for n in sizes:
            system, config = build_system(n1=n, n2=n, f1=n // 4, f2=n // 4)
            system.write(b"flat")
            system.run_until_idle()
            result = system.read()
            costs.append(system.operation_cost(result.op_id))
        growth = costs[-1] / costs[0]
        size_growth = sizes[-1] / sizes[0]
        assert growth < size_growth / 2  # clearly sub-linear (Theta(1))
        assert costs[-1] < sizes[-1]  # strictly below the n1 baseline of delta > 0


class TestStorageCost:
    def test_l2_storage_matches_lemma_v3(self):
        system, config = build_system()
        system.write(b"stored")
        system.run_until_idle()
        expected = mbr_storage_cost_l2(config.n2, config.k, config.d)
        assert system.storage.l2_cost == pytest.approx(expected, rel=1e-9)

    def test_l2_storage_independent_of_number_of_writes(self):
        system, config = build_system()
        for index in range(4):
            system.write(bytes([index + 1]) * 3)
            system.run_until_idle()
        expected = mbr_storage_cost_l2(config.n2, config.k, config.d)
        assert system.storage.l2_cost == pytest.approx(expected, rel=1e-9)

    def test_temporary_storage_peaks_during_write_then_drains(self):
        system, _ = build_system()
        result = system.write(b"spike")
        peak_during = system.storage.l1_peak
        system.run_until_idle()
        assert peak_during >= 1.0  # at least one full copy lived in L1
        assert system.storage.l1_cost == 0.0
        assert system.storage.temporary_clear_time(result.tag) is not None

    def test_l1_peak_bounded_by_copies_of_concurrent_writes(self):
        system, config = build_system()
        for index in range(2):
            system.invoke_write(bytes([index + 1]) * 4, writer=index, at=0.0)
        system.run_until_idle()
        # At most (number of concurrent writes) values per L1 server.
        assert system.storage.l1_peak <= 2 * config.n1
