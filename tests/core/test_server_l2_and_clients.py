"""Unit tests for the L2 server automaton and client edge cases."""

import pytest

from repro.core import messages as msg
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.core.tags import Tag
from repro.net.latency import FixedLatencyModel
from repro.net.messages import Message


def build_system(**kwargs):
    config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
    return LDSSystem(config, num_writers=2, num_readers=2,
                     latency_model=FixedLatencyModel(), **kwargs)


class TestL2Server:
    def test_initial_state_holds_coded_initial_value(self):
        system = build_system()
        for server in system.l2_servers:
            assert server.stored_tag == Tag.initial()
            assert len(server.stored_element.data) > 0

    def test_stale_write_code_elem_is_acked_but_not_stored(self):
        system = build_system()
        result = system.write(b"current version")
        system.run_until_idle()
        target = system.l2_servers[0]
        element_before = target.stored_element.data
        # Deliver a WRITE-CODE-ELEM with an older tag directly.
        stale = msg.WriteCodeElem(tag=Tag.initial(), coded_element=b"\x00" * len(element_before))
        target.on_message(system.config.l1_pid(0), stale)
        assert target.stored_tag == result.tag
        assert target.stored_element.data == element_before

    def test_newer_write_code_elem_replaces_stored_pair(self):
        system = build_system()
        system.write(b"v1")
        system.run_until_idle()
        target = system.l2_servers[0]
        newer_tag = Tag(99, "writer-0")
        replacement = msg.WriteCodeElem(tag=newer_tag,
                                        coded_element=target.stored_element.data)
        target.on_message(system.config.l1_pid(0), replacement)
        assert target.stored_tag == newer_tag

    def test_helper_response_carries_current_tag_and_regen_id(self):
        system = build_system()
        system.write(b"value for helpers")
        system.run_until_idle()
        target = system.l2_servers[0]
        request = msg.QueryCodeElem(reader_id="reader-0", l1_index=2, op_id="read-op")
        request.payload["regen_id"] = 7
        captured = []
        target.send = lambda dest, message: captured.append((dest, message))  # type: ignore[assignment]
        target.on_message(system.config.l1_pid(2), request)
        destination, response = captured[0]
        assert destination == system.config.l1_pid(2)
        assert isinstance(response, msg.SendHelperElem)
        assert response.tag == target.stored_tag
        assert response.payload["regen_id"] == 7
        assert response.data_size == pytest.approx(float(system.code.costs.helper_fraction))

    def test_unknown_messages_are_ignored(self):
        system = build_system()
        target = system.l2_servers[0]
        target.on_message("nobody", Message(kind="garbage"))
        assert target.stored_tag == Tag.initial()


class TestClientEdgeCases:
    def test_writer_ignores_stale_phase_messages(self):
        system = build_system()
        writer = system.writers[0]
        result = system.write(b"done")
        # A late QueryTagResponse for the finished operation must be ignored.
        writer.on_message(system.config.l1_pid(0),
                          msg.QueryTagResponse(tag=Tag(50, "x"), op_id=result.op_id))
        assert not writer.busy

    def test_reader_ignores_duplicate_acks_from_same_server(self):
        system = build_system()
        system.write(b"x")
        reader = system.readers[0]
        op_id = system.invoke_read(reader=0)
        # Feed duplicated put-tag acks directly; quorum must count distinct senders.
        system.run_until_idle()
        assert op_id in system.results
        assert not reader.busy

    def test_operation_ids_are_unique_even_when_scheduled_in_advance(self):
        system = build_system()
        first = system.invoke_write(b"a", writer=0, at=10.0)
        second = system.invoke_write(b"b", writer=0, at=200.0)
        assert first != second
        system.run_until_idle()
        assert first in system.results and second in system.results

    def test_run_until_complete_raises_for_impossible_operation(self):
        system = build_system()
        with pytest.raises(RuntimeError):
            system.run_until_complete("not-a-real-operation")

    def test_client_lookup_by_pid_and_invalid_selector(self):
        system = build_system()
        result = system.write(b"by pid", writer="writer-1")
        assert result.client_id == "writer-1"
        with pytest.raises(KeyError):
            system.write(b"nope", writer="writer-99")

    def test_storage_sample_convenience(self):
        system = build_system()
        sample = system.storage_sample()
        assert sample.l2_cost > 0
        assert system.alive_l1_count() == 5
        assert system.alive_l2_count() == 6
