"""Unit tests for the storage cost tracker."""

import pytest

from repro.core.costs import StorageCostTracker
from repro.core.tags import Tag


class TestStorageTracker:
    def test_l1_add_and_remove(self):
        tracker = StorageCostTracker()
        tracker.value_added(1.0, "l1-0", Tag(1, "w"), 1.0)
        tracker.value_added(1.5, "l1-1", Tag(1, "w"), 1.0)
        assert tracker.l1_cost == pytest.approx(2.0)
        tracker.value_removed(2.0, "l1-0", Tag(1, "w"))
        assert tracker.l1_cost == pytest.approx(1.0)

    def test_peak_tracking(self):
        tracker = StorageCostTracker()
        tracker.value_added(1.0, "l1-0", Tag(1, "w"), 1.0)
        tracker.value_added(1.0, "l1-0", Tag(2, "w"), 1.0)
        tracker.value_removed(2.0, "l1-0", Tag(1, "w"))
        assert tracker.l1_peak == pytest.approx(2.0)
        assert tracker.l1_cost == pytest.approx(1.0)

    def test_removing_unknown_value_is_harmless(self):
        tracker = StorageCostTracker()
        tracker.value_removed(1.0, "l1-0", Tag(9, "w"))
        assert tracker.l1_cost == 0.0
        assert tracker.events == []

    def test_l2_storage_overwrites_per_server(self):
        tracker = StorageCostTracker()
        tracker.l2_element_stored("l2-0", 0.4)
        tracker.l2_element_stored("l2-1", 0.4)
        tracker.l2_element_stored("l2-0", 0.4)  # same server again
        assert tracker.l2_cost == pytest.approx(0.8)

    def test_total_and_samples(self):
        tracker = StorageCostTracker()
        tracker.value_added(0.0, "l1-0", Tag(1, "w"), 1.0)
        tracker.l2_element_stored("l2-0", 0.5)
        sample = tracker.sample(time=3.0)
        assert sample.l1_cost == pytest.approx(1.0)
        assert sample.l2_cost == pytest.approx(0.5)
        assert sample.total == pytest.approx(1.5)
        assert tracker.samples == [sample]

    def test_temporary_clear_time(self):
        tracker = StorageCostTracker()
        tag = Tag(1, "w")
        tracker.value_added(1.0, "l1-0", tag, 1.0)
        tracker.value_added(1.0, "l1-1", tag, 1.0)
        tracker.value_removed(4.0, "l1-0", tag)
        tracker.value_removed(6.0, "l1-1", tag)
        assert tracker.temporary_clear_time(tag) == pytest.approx(6.0)

    def test_temporary_clear_time_none_while_still_stored(self):
        tracker = StorageCostTracker()
        tracker.value_added(1.0, "l1-0", Tag(1, "w"), 1.0)
        assert tracker.temporary_clear_time(Tag(1, "w")) is None

    def test_temporary_clear_time_ignores_newer_tags(self):
        tracker = StorageCostTracker()
        old, new = Tag(1, "w"), Tag(2, "w")
        tracker.value_added(1.0, "l1-0", old, 1.0)
        tracker.value_removed(2.0, "l1-0", old)
        tracker.value_added(3.0, "l1-0", new, 1.0)  # still live, but newer
        assert tracker.temporary_clear_time(old) == pytest.approx(2.0)

    def test_peak_costs_tuple(self):
        tracker = StorageCostTracker()
        tracker.value_added(0.0, "l1-0", Tag(1, "w"), 1.0)
        tracker.l2_element_stored("l2-0", 0.25)
        assert tracker.peak_costs() == (pytest.approx(1.0), pytest.approx(0.25))
