"""Focused unit tests for L1 server state transitions (Figure 2 invariants)."""

import pytest

from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.core.tags import Tag
from repro.net.latency import FixedLatencyModel


def build_system():
    config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
    return LDSSystem(config, num_writers=2, num_readers=2,
                     latency_model=FixedLatencyModel())


class TestListInvariants:
    def test_initial_state(self):
        system = build_system()
        for server in system.l1_servers:
            assert server.committed_tag == Tag.initial()
            assert server.max_list_tag() == Tag.initial()
            assert server.value_for(Tag.initial()) is None

    def test_lemma_iv2_values_in_list_are_at_least_the_committed_tag(self):
        # Lemma IV.2: any (tag, value) pair still holding a value satisfies
        # tag >= tc.  Check after a batch of writes and reads.
        system = build_system()
        for index in range(3):
            system.invoke_write(bytes([index + 1]) * 4, writer=index % 2, at=index * 20.0)
        system.invoke_read(reader=0, at=3.0)
        system.run_until_idle()
        for server in system.l1_servers:
            for tag, value in server.list_storage.items():
                if value is not None:
                    assert tag >= server.committed_tag

    def test_lemma_iv1_committed_tag_is_monotone(self):
        # Track tc after each quiescent point; it must never decrease.
        system = build_system()
        previous = {server.pid: server.committed_tag for server in system.l1_servers}
        for index in range(4):
            system.write(bytes([index + 1]))
            system.run_until_idle()
            for server in system.l1_servers:
                assert server.committed_tag >= previous[server.pid]
                previous[server.pid] = server.committed_tag

    def test_garbage_collection_replaces_old_values_with_bottom(self):
        system = build_system()
        first = system.write(b"first")
        system.run_until_idle()
        system.write(b"second")
        system.run_until_idle()
        for server in system.l1_servers:
            assert server.value_for(first.tag) is None  # value gone, tag may remain

    def test_list_keeps_tag_metadata_after_gc(self):
        system = build_system()
        result = system.write(b"metadata stays")
        system.run_until_idle()
        for server in system.l1_servers:
            assert result.tag in server.list_storage
            assert server.max_list_tag() >= result.tag


class TestInternalOperations:
    def test_write_to_l2_started_once_per_tag_per_server(self):
        system = build_system()
        result = system.write(b"offload once")
        system.run_until_idle()
        for server in system.l1_servers:
            assert result.tag in server._write_to_l2_started
        # WRITE-CODE-ELEM messages: at most one per (L1 server, L2 server).
        sent = system.network.costs.messages_by_kind.get("WriteCodeElem", 0)
        assert sent <= system.config.n1 * system.config.n2

    def test_registered_readers_are_cleared_after_reads_finish(self):
        system = build_system()
        system.write(b"v")
        system.run_until_idle()
        system.read()
        system.run_until_idle()
        for server in system.l1_servers:
            assert server.registered_readers == {}

    def test_regeneration_bookkeeping_is_cleaned_up(self):
        system = build_system()
        system.write(b"v")
        system.run_until_idle()
        system.read()
        system.run_until_idle()
        for server in system.l1_servers:
            assert all(not helpers for helpers in server.helper_store.values())

    def test_l2_servers_never_store_a_lower_tag_than_acknowledged(self):
        # Consistency of internal reads w.r.t. internal writes (Lemma IV.4
        # precondition): after a completed write, L2 servers only move forward.
        system = build_system()
        first = system.write(b"one")
        system.run_until_idle()
        tags_after_first = {server.pid: server.stored_tag for server in system.l2_servers}
        system.write(b"two")
        system.run_until_idle()
        for server in system.l2_servers:
            assert server.stored_tag >= tags_after_first[server.pid]
            assert server.stored_tag >= first.tag

    def test_persistence_lemma_iv3_after_a_completed_write(self):
        # Lemma IV.3: in any set of f1 + k non-faulty L1 servers there is one
        # whose committed tag and list tag reach the completed write's tag.
        system = build_system()
        result = system.write(b"persist me")
        quorum = system.config.l1_quorum
        servers = system.l1_servers[:quorum]
        assert any(
            server.committed_tag >= result.tag and server.max_list_tag() >= result.tag
            for server in servers
        )
