"""Unit tests for the closed-form Section V formulas."""

import pytest

from repro.core.analysis import (
    latency_bounds,
    mbr_element_fraction,
    mbr_helper_fraction,
    mbr_read_cost,
    mbr_storage_cost_l2,
    mbr_write_cost,
    msr_element_fraction,
    msr_read_cost,
    msr_storage_cost_l2,
    multi_object_storage_bounds,
    replication_storage_cost_l2,
)


class TestFractions:
    def test_mbr_fractions_for_small_code(self):
        # k=3, d=4: B=9, alpha=4, beta=1.
        assert mbr_element_fraction(3, 4) == pytest.approx(4 / 9)
        assert mbr_helper_fraction(3, 4) == pytest.approx(1 / 9)

    def test_msr_fractions(self):
        assert msr_element_fraction(3, 4) == pytest.approx(1 / 3)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            mbr_element_fraction(0, 4)
        with pytest.raises(ValueError):
            mbr_element_fraction(5, 4)


class TestCommunicationCosts:
    def test_write_cost_formula(self):
        # Lemma V.2 with n1=5, n2=6, k=3, d=4: 5 + 5*6*(4/9).
        assert mbr_write_cost(5, 6, 3, 4) == pytest.approx(5 + 30 * 4 / 9)

    def test_write_cost_is_theta_n1(self):
        costs = [mbr_write_cost(n, n, n - 2, n - 2) / n for n in (10, 20, 40, 80)]
        # Cost per unit of n1 stays bounded (Theta(n1)).
        assert max(costs) / min(costs) < 2.0

    def test_read_cost_delta_zero_is_theta_1(self):
        # With k = Theta(n), d = Theta(n): cost approaches a constant ~4.
        costs = [mbr_read_cost(n, n, int(0.8 * n), int(0.8 * n), delta=0) for n in (20, 50, 100)]
        assert all(cost < 8 for cost in costs)

    def test_read_cost_delta_positive_adds_n1(self):
        without = mbr_read_cost(50, 50, 40, 40, delta=0)
        with_concurrency = mbr_read_cost(50, 50, 40, 40, delta=3)
        assert with_concurrency == pytest.approx(without + 50)

    def test_msr_read_cost_is_omega_n1_even_without_concurrency(self):
        # Remark 1: with n1 = n2, f1 = f2, MSR read cost grows linearly in n1.
        small = msr_read_cost(20, 20, 16, 16, delta=0)
        large = msr_read_cost(100, 100, 80, 80, delta=0)
        assert large > 4 * small
        assert large >= 100 * msr_element_fraction(80, 80)


class TestStorageCosts:
    def test_mbr_l2_storage_formula(self):
        assert mbr_storage_cost_l2(6, 3, 4) == pytest.approx(6 * 4 / 9)

    def test_figure6_parameters(self):
        # n2=100, k=d=80: 2*80*100 / (80*81) = 200/81 ~ 2.47 per object.
        value = mbr_storage_cost_l2(100, 80, 80)
        assert value == pytest.approx(200 / 81)
        assert value < 3

    def test_mbr_at_most_twice_msr(self):
        for k, d in [(3, 4), (10, 12), (80, 80)]:
            assert mbr_storage_cost_l2(100, k, d) <= 2 * msr_storage_cost_l2(100, k, d)

    def test_replication_is_much_more_expensive(self):
        assert replication_storage_cost_l2(100) == 100
        assert replication_storage_cost_l2(100) > 30 * mbr_storage_cost_l2(100, 80, 80)


class TestLatencyBounds:
    def test_write_bound(self):
        bounds = latency_bounds(tau0=1, tau1=1, tau2=10)
        assert bounds.write == pytest.approx(6)

    def test_extended_write_bound(self):
        bounds = latency_bounds(tau0=1, tau1=1, tau2=10)
        assert bounds.extended_write == pytest.approx(max(3 + 2 + 20, 6))

    def test_read_bound(self):
        bounds = latency_bounds(tau0=1, tau1=1, tau2=10)
        assert bounds.read == pytest.approx(max(6 + 20, 6 + 2 + 10))

    def test_extended_write_never_below_write(self):
        bounds = latency_bounds(tau0=5, tau1=5, tau2=0.1)
        assert bounds.extended_write >= bounds.write

    def test_positive_delays_required(self):
        with pytest.raises(ValueError):
            latency_bounds(0, 1, 1)


class TestMultiObjectBounds:
    def test_figure6_values(self):
        # n1=n2=100, k=d=80, mu=10, theta=100.
        bounds = multi_object_storage_bounds(num_objects=1000, n1=100, n2=100, k=80,
                                             theta=100, mu=10)
        assert bounds.l1_bound == pytest.approx(25 * 100 * 100)
        assert bounds.l2_bound == pytest.approx(2 * 1000 * 100 / 81)

    def test_l2_dominates_for_many_objects(self):
        small = multi_object_storage_bounds(10, 100, 100, 80, theta=100, mu=10)
        large = multi_object_storage_bounds(10_000_000, 100, 100, 80, theta=100, mu=10)
        assert small.l1_bound > small.l2_bound
        assert large.l2_bound > large.l1_bound

    def test_l2_scales_linearly_with_objects(self):
        one = multi_object_storage_bounds(1000, 100, 100, 80, theta=100, mu=10)
        two = multi_object_storage_bounds(2000, 100, 100, 80, theta=100, mu=10)
        assert two.l2_bound == pytest.approx(2 * one.l2_bound)
        assert two.l1_bound == pytest.approx(one.l1_bound)

    def test_threshold_formula(self):
        bounds = multi_object_storage_bounds(1000, 100, 100, 80, theta=100, mu=10)
        assert bounds.theta_threshold == pytest.approx(1000 * 100 * 80 / (100 * 10))

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_object_storage_bounds(-1, 10, 10, 8, 1, 1)
        with pytest.raises(ValueError):
            multi_object_storage_bounds(1, 10, 10, 8, 1, 0)
