"""Integration tests of the LDS protocol: sequential behaviour."""

import pytest

from repro.consistency.linearizability import LinearizabilityChecker, check_atomicity_by_tags
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.core.tags import Tag
from repro.net.latency import BoundedLatencyModel, FixedLatencyModel


class TestSingleOperations:
    def test_read_before_any_write_returns_initial_value(self, small_config, fixed_latency):
        system = LDSSystem(small_config, latency_model=fixed_latency)
        result = system.read()
        assert result.value == small_config.initial_value
        assert result.tag == Tag.initial()

    def test_write_then_read_returns_written_value(self, small_system):
        written = b"hello layered storage"
        write_result = small_system.write(written)
        read_result = small_system.read()
        assert read_result.value == written
        assert read_result.tag == write_result.tag

    def test_write_tag_carries_the_writer_id(self, small_system):
        result = small_system.write(b"v", writer=1)
        assert result.tag.writer_id == "writer-1"
        assert result.tag.z == 1

    def test_sequential_writes_get_increasing_tags(self, small_system):
        tags = [small_system.write(bytes([i])).tag for i in range(5)]
        assert tags == sorted(tags)
        assert len(set(tags)) == 5

    def test_read_after_quiescence_uses_regeneration(self, small_config, fixed_latency):
        # After the write's value has been offloaded to L2 and garbage
        # collected from L1, a later read must regenerate coded data.
        system = LDSSystem(small_config, latency_model=fixed_latency)
        written = b"persisted then regenerated"
        system.write(written)
        system.run_until_idle()
        assert system.storage.l1_cost == 0.0  # temporary copies gone
        result = system.read()
        assert result.value == written

    def test_alternating_writes_and_reads(self, small_system):
        for index in range(4):
            value = f"value-{index}".encode()
            small_system.write(value, writer=index % 2)
            small_system.run_until_idle()
            assert small_system.read(reader=index % 2).value == value

    def test_empty_value_roundtrip(self, small_system):
        small_system.write(b"")
        small_system.run_until_idle()
        assert small_system.read().value == b""

    def test_large_value_roundtrip(self, small_system):
        value = bytes(range(256)) * 8  # multiple stripes
        small_system.write(value)
        small_system.run_until_idle()
        assert small_system.read().value == value

    def test_two_writers_alternating(self, small_system):
        small_system.write(b"from writer 0", writer=0)
        small_system.write(b"from writer 1", writer=1)
        assert small_system.read().value == b"from writer 1"

    def test_different_readers_see_the_latest_value(self, small_system):
        small_system.write(b"shared state")
        assert small_system.read(reader=0).value == b"shared state"
        assert small_system.read(reader=1).value == b"shared state"


class TestWellFormedness:
    def test_writer_rejects_overlapping_operations(self, small_system):
        small_system.invoke_write(b"a", writer=0)
        with pytest.raises(RuntimeError):
            small_system.writers[0].write(b"b")

    def test_reader_rejects_overlapping_operations(self, small_system):
        small_system.invoke_read(reader=0)
        with pytest.raises(RuntimeError):
            small_system.readers[0].read()

    def test_history_is_well_formed(self, small_system):
        small_system.write(b"a")
        small_system.read()
        small_system.write(b"b", writer=1)
        assert small_system.history().is_well_formed()


class TestStateAfterOperations:
    def test_l2_servers_hold_the_latest_tag_after_quiescence(self, small_system):
        result = small_system.write(b"offloaded")
        small_system.run_until_idle()
        for server in small_system.l2_servers:
            assert server.stored_tag == result.tag

    def test_l2_storage_cost_is_constant(self, small_config, fixed_latency):
        system = LDSSystem(small_config, latency_model=fixed_latency)
        expected = float(small_config.n2) * float(system.code.costs.element_fraction)
        assert system.storage.l2_cost == pytest.approx(expected)
        system.write(b"one")
        system.run_until_idle()
        assert system.storage.l2_cost == pytest.approx(expected)

    def test_temporary_storage_is_cleared_after_write_settles(self, small_system):
        result = small_system.write(b"temporary")
        small_system.run_until_idle()
        assert small_system.storage.l1_cost == 0.0
        assert small_system.storage.temporary_clear_time(result.tag) is not None

    def test_committed_tags_advance_on_all_l1_servers(self, small_system):
        result = small_system.write(b"commit everywhere")
        small_system.run_until_idle()
        for server in small_system.l1_servers:
            assert server.committed_tag >= result.tag

    def test_operation_results_recorded(self, small_system):
        op_id = small_system.invoke_write(b"tracked")
        small_system.run_until_idle()
        assert op_id in small_system.results
        assert small_system.results[op_id].kind == "write"


class TestAtomicityOfSimpleExecutions:
    def test_sequential_history_passes_both_checkers(self, small_system):
        small_system.write(b"one")
        small_system.read()
        small_system.write(b"two", writer=1)
        small_system.read(reader=1)
        history = small_system.history().complete()
        assert check_atomicity_by_tags(history) is None
        assert LinearizabilityChecker().check(history) is None

    def test_randomised_latency_sequential_history_is_atomic(self, small_config):
        system = LDSSystem(small_config, num_writers=2, num_readers=2,
                           latency_model=BoundedLatencyModel(seed=11))
        for index in range(3):
            system.write(f"value-{index}".encode(), writer=index % 2)
            system.read(reader=index % 2)
        history = system.history().complete()
        assert check_atomicity_by_tags(history) is None


class TestOtherConfigurations:
    @pytest.mark.parametrize("n1,n2,f1,f2", [(3, 4, 1, 1), (5, 9, 2, 2), (7, 7, 2, 2), (4, 7, 1, 2)])
    def test_write_read_roundtrip_across_configurations(self, n1, n2, f1, f2):
        config = LDSConfig(n1=n1, n2=n2, f1=f1, f2=f2)
        system = LDSSystem(config, latency_model=FixedLatencyModel())
        system.write(b"configuration sweep")
        system.run_until_idle()
        assert system.read().value == b"configuration sweep"

    def test_msr_operating_point_roundtrip(self):
        config = LDSConfig(n1=5, n2=6, f1=1, f2=1, operating_point="msr")
        system = LDSSystem(config, latency_model=FixedLatencyModel())
        system.write(b"msr backend")
        system.run_until_idle()
        assert system.read().value == b"msr backend"

    def test_custom_initial_value(self):
        config = LDSConfig(n1=5, n2=6, f1=1, f2=1, initial_value=b"genesis")
        system = LDSSystem(config, latency_model=FixedLatencyModel())
        assert system.read().value == b"genesis"
