"""Tests that measured operation durations respect the Lemma V.4 bounds."""

import pytest

from repro.core.analysis import latency_bounds
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import BoundedLatencyModel, FixedLatencyModel


def build_system(tau0=1.0, tau1=1.0, tau2=10.0, bounded_random=False, seed=0):
    config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
    if bounded_random:
        latency = BoundedLatencyModel(tau0=tau0, tau1=tau1, tau2=tau2, seed=seed)
    else:
        latency = FixedLatencyModel(tau0=tau0, tau1=tau1, tau2=tau2)
    return LDSSystem(config, num_writers=2, num_readers=2, latency_model=latency)


class TestWriteLatency:
    def test_write_duration_with_fixed_delays_is_exactly_the_bound(self):
        system = build_system()
        result = system.write(b"time me")
        assert result.duration == pytest.approx(latency_bounds(1, 1, 10).write)

    @pytest.mark.parametrize("tau2", [2.0, 10.0, 50.0])
    def test_write_duration_does_not_depend_on_tau2(self, tau2):
        # The client-visible write never waits for the back-end layer.
        system = build_system(tau2=tau2)
        result = system.write(b"independent of backend latency")
        assert result.duration == pytest.approx(latency_bounds(1, 1, tau2).write)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_write_duration_respects_the_bound_with_random_delays(self, seed):
        system = build_system(bounded_random=True, seed=seed)
        bound = latency_bounds(1, 1, 10).write
        for index in range(3):
            result = system.write(bytes([index + 1]))
            assert result.duration <= bound + 1e-9

    def test_extended_write_clears_l1_within_the_extended_bound(self):
        system = build_system()
        result = system.write(b"extended write")
        system.run_until_idle()
        clear_time = system.storage.temporary_clear_time(result.tag)
        assert clear_time is not None
        extended_duration = clear_time - result.invoked_at
        assert extended_duration <= latency_bounds(1, 1, 10).extended_write + 1e-9


class TestReadLatency:
    def test_quiescent_read_duration_respects_the_bound(self):
        system = build_system()
        system.write(b"value")
        system.run_until_idle()
        result = system.read()
        assert result.duration <= latency_bounds(1, 1, 10).read + 1e-9

    def test_concurrent_read_duration_respects_the_bound(self):
        system = build_system()
        system.invoke_write(b"concurrent", writer=0, at=0.0)
        read_op = system.invoke_read(reader=0, at=0.5)
        system.run_until_idle()
        result = system.results[read_op]
        assert result.duration <= latency_bounds(1, 1, 10).read + 1e-9

    def test_read_of_initial_value_respects_the_bound(self):
        system = build_system()
        result = system.read()
        assert result.duration <= latency_bounds(1, 1, 10).read + 1e-9

    @pytest.mark.parametrize("seed", [5, 6])
    def test_read_durations_with_random_delays_respect_the_bound(self, seed):
        system = build_system(bounded_random=True, seed=seed)
        system.write(b"randomised")
        system.run_until_idle()
        bound = latency_bounds(1, 1, 10).read
        for _ in range(3):
            result = system.read()
            assert result.duration <= bound + 1e-9

    def test_concurrent_read_is_faster_than_quiescent_read_with_slow_backend(self):
        # Serving from the edge avoids the 2*tau2 round trip to L2: with a
        # much slower back-end, a read overlapping a write completes sooner
        # than a read that must regenerate from L2.
        slow_backend = 50.0
        quiescent = build_system(tau2=slow_backend)
        quiescent.write(b"value")
        quiescent.run_until_idle()
        quiescent_read = quiescent.read()

        concurrent = build_system(tau2=slow_backend)
        concurrent.invoke_write(b"value", writer=0, at=0.0)
        read_op = concurrent.invoke_read(reader=0, at=1.0)
        concurrent.run_until_idle()
        concurrent_read = concurrent.results[read_op]
        assert concurrent_read.duration < quiescent_read.duration


class TestLatencyScaling:
    def test_durations_scale_with_tau1(self):
        fast = build_system(tau0=1, tau1=1, tau2=10).write(b"x").duration
        slow = build_system(tau0=2, tau1=2, tau2=10).write(b"x").duration
        assert slow == pytest.approx(2 * fast)

    def test_quiescent_read_scales_with_tau2(self):
        def quiescent_read_duration(tau2):
            system = build_system(tau2=tau2)
            system.write(b"v")
            system.run_until_idle()
            return system.read().duration

        assert quiescent_read_duration(20.0) > quiescent_read_duration(5.0)
