"""Tests for the multi-object system (Section V-A.1 / Figure 6)."""

import pytest

from repro.core.analysis import multi_object_storage_bounds
from repro.core.config import LDSConfig
from repro.core.multi_object import MultiObjectSystem
from repro.net.latency import BoundedLatencyModel


def build_multi(num_objects=4, n=5, f=1, seed=7):
    config = LDSConfig.symmetric(n=n, f=f)
    return MultiObjectSystem(
        config, num_objects=num_objects,
        latency_factory=lambda index: BoundedLatencyModel(tau0=1, tau1=1, tau2=5,
                                                          seed=index + seed),
        seed=seed,
    ), config


class TestConstruction:
    def test_independent_instances_per_object(self):
        multi, _ = build_multi(num_objects=3)
        assert len(multi.systems) == 3
        object_ids = {system.object_id for system in multi.systems}
        assert object_ids == {"object-0", "object-1", "object-2"}

    def test_at_least_one_object_required(self):
        config = LDSConfig.symmetric(n=5, f=1)
        with pytest.raises(ValueError):
            MultiObjectSystem(config, num_objects=0)


class TestWorkloadsAndStorage:
    def test_scheduled_writes_all_complete(self):
        multi, _ = build_multi(num_objects=3)
        ops = [
            multi.schedule_write(0, b"a", at=0.0),
            multi.schedule_write(1, b"b", at=0.0),
            multi.schedule_write(2, b"c", at=5.0),
        ]
        multi.run_all()
        assert multi.all_operations_complete()
        assert len(ops) == 3

    def test_reads_return_written_values_per_object(self):
        multi, _ = build_multi(num_objects=2)
        multi.schedule_write(0, b"object zero", at=0.0)
        multi.schedule_write(1, b"object one", at=0.0)
        multi.schedule_read(0, at=100.0)
        multi.schedule_read(1, at=100.0)
        multi.run_all()
        values = {
            system.object_id: [op.value for op in system.history().reads()]
            for system in multi.systems
        }
        assert values["object-0"] == [b"object zero"]
        assert values["object-1"] == [b"object one"]

    def test_uniform_write_load_stays_well_formed(self):
        multi, _ = build_multi(num_objects=4)
        multi.schedule_uniform_write_load(writes_per_unit_time=0.3, duration=60.0)
        multi.run_all()
        assert multi.all_operations_complete()
        for system in multi.systems:
            assert system.history().is_well_formed()

    def test_l2_cost_scales_linearly_with_object_count(self):
        small, config = build_multi(num_objects=2)
        large, _ = build_multi(num_objects=6)
        expected_per_object = config.n2 * float(small.systems[0].code.costs.element_fraction)
        assert small.total_l2_cost() == pytest.approx(2 * expected_per_object)
        assert large.total_l2_cost() == pytest.approx(6 * expected_per_object)

    def test_l1_storage_drains_after_quiescence(self):
        multi, _ = build_multi(num_objects=3)
        multi.schedule_uniform_write_load(writes_per_unit_time=0.2, duration=50.0)
        multi.run_all()
        final_time = max(system.simulator.now for system in multi.systems) + 1.0
        samples = multi.storage_timeseries([final_time])
        assert samples[0].l1_cost == pytest.approx(0.0)
        assert samples[0].l2_cost == pytest.approx(multi.total_l2_cost())

    def test_storage_timeseries_is_sorted_and_complete(self):
        multi, _ = build_multi(num_objects=2)
        multi.schedule_write(0, b"x", at=0.0)
        multi.run_all()
        samples = multi.storage_timeseries([10.0, 0.0, 5.0])
        assert [sample.time for sample in samples] == [0.0, 5.0, 10.0]
        assert all(sample.total >= sample.l2_cost for sample in samples)

    def test_peak_l1_cost_positive_under_write_load(self):
        multi, _ = build_multi(num_objects=3)
        multi.schedule_uniform_write_load(writes_per_unit_time=0.25, duration=40.0)
        multi.run_all()
        assert multi.peak_l1_cost() >= 1.0


class TestAgainstLemmaV5:
    def test_measured_storage_within_the_lemma_bounds(self):
        multi, config = build_multi(num_objects=5, n=5, f=1)
        ops = multi.schedule_uniform_write_load(writes_per_unit_time=0.5, duration=40.0)
        multi.run_all()
        theta = len(ops)  # trivially upper-bounds concurrent writes per tau1
        bounds = multi_object_storage_bounds(
            num_objects=5, n1=config.n1, n2=config.n2, k=config.k, theta=theta, mu=5.0
        )
        assert multi.peak_l1_cost() <= bounds.l1_bound + 1e-9
        assert multi.total_l2_cost() <= bounds.l2_bound + 1e-9

    def test_l2_dominates_when_objects_far_exceed_write_rate(self):
        multi, _ = build_multi(num_objects=8)
        multi.schedule_write(0, b"only one write", at=0.0)
        multi.run_all()
        final_time = max(system.simulator.now for system in multi.systems) + 1.0
        sample = multi.storage_timeseries([final_time])[0]
        assert sample.l2_cost > sample.l1_cost
