"""Unit tests for version tags."""

import pytest

from repro.core.tags import INITIAL_TAG, Tag


class TestTagOrder:
    def test_initial_tag(self):
        assert Tag.initial() == Tag(0, "")
        assert INITIAL_TAG == Tag.initial()

    def test_counter_dominates(self):
        assert Tag(2, "a") > Tag(1, "z")

    def test_writer_id_breaks_ties(self):
        assert Tag(1, "writer-b") > Tag(1, "writer-a")

    def test_total_order_is_consistent(self):
        tags = [Tag(1, "b"), Tag(0, ""), Tag(2, "a"), Tag(1, "a")]
        ordered = sorted(tags)
        assert ordered == [Tag(0, ""), Tag(1, "a"), Tag(1, "b"), Tag(2, "a")]

    def test_equality_and_hash(self):
        assert Tag(3, "w") == Tag(3, "w")
        assert hash(Tag(3, "w")) == hash(Tag(3, "w"))
        assert Tag(3, "w") != Tag(3, "x")
        assert len({Tag(1, "a"), Tag(1, "a"), Tag(2, "a")}) == 2

    def test_comparison_with_non_tag(self):
        assert Tag(1, "a").__eq__(42) is NotImplemented

    def test_next_tag_is_strictly_larger(self):
        tag = Tag(7, "zzz")
        successor = tag.next_tag("aaa")
        assert successor > tag
        assert successor.z == 8
        assert successor.writer_id == "aaa"

    def test_negative_counter_rejected(self):
        with pytest.raises(ValueError):
            Tag(-1, "w")

    def test_ordering_transitive(self):
        a, b, c = Tag(1, "x"), Tag(1, "y"), Tag(2, "a")
        assert a < b < c
        assert a < c
