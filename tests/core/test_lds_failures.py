"""Integration tests of LDS liveness and atomicity under crash failures.

The paper (Theorem IV.8) guarantees that every operation of a non-faulty
client completes as long as at most f1 < n1/2 L1 servers and f2 < n2/3 L2
servers crash.  These tests exercise the failure budgets at their maximum,
with crashes before, during and between operations.
"""

import pytest

from repro.consistency.linearizability import check_atomicity_by_tags
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import BoundedLatencyModel, FixedLatencyModel


def build_system(config=None, latency=None, writers=2, readers=2):
    config = config or LDSConfig(n1=5, n2=6, f1=1, f2=1)
    return LDSSystem(config, num_writers=writers, num_readers=readers,
                     latency_model=latency or FixedLatencyModel())


class TestL1Failures:
    def test_operations_complete_with_max_l1_failures_before_start(self):
        system = build_system()
        for index in range(system.config.f1):
            system.crash_l1(index)
        system.write(b"despite L1 crashes")
        system.run_until_idle()
        assert system.read().value == b"despite L1 crashes"

    def test_operations_complete_when_l1_crashes_mid_write(self):
        system = build_system()
        system.crash_l1(0, at=1.5)  # between the two write phases
        op = system.invoke_write(b"crash during write", at=0.0)
        result = system.run_until_complete(op)
        assert result.value == b"crash during write"
        system.run_until_idle()
        assert system.read().value == b"crash during write"

    def test_read_completes_when_l1_crashes_mid_read(self):
        system = build_system()
        system.write(b"stable value")
        system.run_until_idle()
        crash_at = system.simulator.now + 1.5
        system.crash_l1(4, at=crash_at)
        result = system.read()
        assert result.value == b"stable value"

    def test_exceeding_f1_is_not_required_to_be_live(self):
        # Not a liveness assertion -- just documents that the budget matters:
        # with f1 crashes the quorum of f1 + k = n1 - f1 servers still exists.
        config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
        assert config.l1_quorum <= config.n1 - config.f1


class TestL2Failures:
    def test_write_completes_with_max_l2_failures(self):
        system = build_system()
        for index in range(system.config.f2):
            system.crash_l2(index)
        result = system.write(b"L2 failures tolerated")
        assert result.tag.z == 1
        system.run_until_idle()

    def test_read_regenerates_despite_l2_failures(self):
        system = build_system()
        system.write(b"regenerate with crashes")
        system.run_until_idle()
        for index in range(system.config.f2):
            system.crash_l2(index)
        assert system.read().value == b"regenerate with crashes"

    def test_backend_can_still_decode_after_f2_crashes(self):
        system = build_system()
        system.write(b"durable payload")
        system.run_until_idle()
        for index in range(system.config.f2):
            system.crash_l2(index)
        surviving = {
            server.index: server.stored_element.data
            for server in system.l2_servers
            if not server.crashed
        }
        assert system.code.decode_from_backend(surviving) == b"durable payload"


class TestCombinedFailures:
    def test_full_failure_budget_in_both_layers(self):
        config = LDSConfig(n1=7, n2=9, f1=2, f2=2)
        system = build_system(config=config)
        system.crash_l1(1)
        system.crash_l1(5)
        system.crash_l2(0)
        system.crash_l2(7)
        system.write(b"worst case budget")
        system.run_until_idle()
        assert system.read().value == b"worst case budget"

    def test_crashes_interleaved_with_operations_keep_atomicity(self):
        system = build_system(latency=BoundedLatencyModel(seed=5))
        system.invoke_write(b"first", writer=0, at=0.0)
        system.crash_l1(2, at=2.0)
        system.invoke_write(b"second", writer=1, at=50.0)
        system.crash_l2(3, at=55.0)
        system.invoke_read(reader=0, at=100.0)
        system.invoke_read(reader=1, at=150.0)
        system.run_until_idle()
        history = system.history()
        assert all(op.is_complete for op in history)
        assert check_atomicity_by_tags(history.complete()) is None

    def test_staggered_crashes_during_a_read_heavy_phase(self):
        config = LDSConfig(n1=7, n2=9, f1=2, f2=2)
        system = build_system(config=config, latency=BoundedLatencyModel(seed=9))
        system.write(b"value zero")
        system.run_until_idle()
        base = system.simulator.now
        system.crash_l1(0, at=base + 5)
        system.crash_l2(1, at=base + 10)
        system.crash_l2(2, at=base + 15)
        ops = [system.invoke_read(reader=i % 2, at=base + 20 + 40 * i) for i in range(4)]
        system.run_until_idle()
        for op in ops:
            assert system.results[op].value == b"value zero"

    def test_client_crash_leaves_system_usable(self):
        system = build_system()
        system.invoke_write(b"orphaned write", writer=0)  # invoked immediately
        system.writers[0].crash()  # ... then the writer crashes mid-operation
        system.run_until_idle()
        # The crashed writer's operation may be incomplete, but other clients
        # must still make progress and see a consistent state.
        result = system.write(b"next value", writer=1)
        assert result.tag.z >= 1
        read = system.read()
        assert read.value in {b"orphaned write", b"next value"}
        assert check_atomicity_by_tags(system.history().complete()) is None
