"""Unit tests for the LDS configuration."""

import pytest

from repro.codes.layered import LayeredCode
from repro.core.config import LDSConfig


class TestValidation:
    def test_valid_configuration(self):
        config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
        assert config.k == 3 and config.d == 4

    def test_f1_budget_enforced(self):
        with pytest.raises(ValueError):
            LDSConfig(n1=4, n2=6, f1=2, f2=1)

    def test_f2_budget_enforced(self):
        with pytest.raises(ValueError):
            LDSConfig(n1=5, n2=6, f1=1, f2=2)

    def test_k_must_not_exceed_d(self):
        with pytest.raises(ValueError):
            LDSConfig(n1=9, n2=5, f1=1, f2=1)  # k=7 > d=3

    def test_field_size_limit(self):
        with pytest.raises(ValueError):
            LDSConfig(n1=150, n2=150, f1=70, f2=40)

    def test_negative_failures_rejected(self):
        with pytest.raises(ValueError):
            LDSConfig(n1=5, n2=6, f1=-1, f2=1)

    def test_unknown_operating_point_rejected(self):
        with pytest.raises(ValueError):
            LDSConfig(n1=5, n2=6, f1=1, f2=1, operating_point="raid5")


class TestDerivedParameters:
    def test_paper_relations(self):
        # n1 = 2 f1 + k and n2 = 2 f2 + d.
        config = LDSConfig(n1=11, n2=13, f1=3, f2=3)
        assert config.n1 == 2 * config.f1 + config.k
        assert config.n2 == 2 * config.f2 + config.d

    def test_quorum_sizes(self):
        config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
        assert config.l1_quorum == config.f1 + config.k == 4
        assert config.l2_quorum == config.n2 - config.f2 == 5

    def test_l1_quorums_intersect_in_k_servers(self):
        # 2 (f1 + k) - n1 = k: any two L1 quorums share at least k servers.
        for n1, f1 in [(5, 1), (7, 3), (11, 2)]:
            config = LDSConfig(n1=n1, n2=n1 + 4, f1=f1, f2=1)
            assert 2 * config.l1_quorum - config.n1 == config.k

    def test_l2_quorums_intersect_in_d_servers(self):
        config = LDSConfig(n1=5, n2=9, f1=1, f2=2)
        assert 2 * config.l2_quorum - config.n2 == config.d

    def test_pids(self):
        config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
        assert config.l1_pids == ["l1-0", "l1-1", "l1-2"]
        assert config.l2_pids == ["l2-0", "l2-1", "l2-2", "l2-3"]
        assert config.broadcast_relay_pids == ["l1-0", "l1-1"]
        with pytest.raises(ValueError):
            config.l1_pid(5)
        with pytest.raises(ValueError):
            config.l2_pid(9)

    def test_build_code_matches_configuration(self):
        config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
        code = config.build_code()
        assert isinstance(code, LayeredCode)
        assert code.n1 == 5 and code.n2 == 6 and code.k == 3 and code.d == 4

    def test_describe_mentions_all_parameters(self):
        text = LDSConfig(n1=5, n2=6, f1=1, f2=1).describe()
        for fragment in ("n1=5", "n2=6", "f1=1", "f2=1", "k=3", "d=4"):
            assert fragment in text


class TestConvenienceConstructors:
    def test_symmetric(self):
        config = LDSConfig.symmetric(n=9, f=2)
        assert config.n1 == config.n2 == 9
        assert config.f1 == config.f2 == 2
        assert config.k == config.d == 5

    def test_max_fault_tolerance(self):
        config = LDSConfig.max_fault_tolerance(n1=10, n2=12)
        assert config.f1 == 4
        assert config.f1 < config.n1 / 2
        assert config.f2 < config.n2 / 3
        assert config.k <= config.d

    def test_max_fault_tolerance_shrinks_f2_when_needed(self):
        config = LDSConfig.max_fault_tolerance(n1=4, n2=4)
        assert config.k <= config.d
