"""Integration tests of the LDS protocol under concurrency."""

import pytest

from repro.consistency.linearizability import LinearizabilityChecker, check_atomicity_by_tags
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import BoundedLatencyModel, ExponentialLatencyModel, FixedLatencyModel
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import WorkloadRunner


def build_system(num_writers=3, num_readers=3, latency=None, config=None):
    config = config or LDSConfig(n1=5, n2=6, f1=1, f2=1)
    return LDSSystem(config, num_writers=num_writers, num_readers=num_readers,
                     latency_model=latency or FixedLatencyModel())


class TestConcurrentWrites:
    def test_concurrent_writes_from_different_writers_all_complete(self):
        system = build_system()
        ops = [system.invoke_write(f"value-{i}".encode(), writer=i, at=0.0) for i in range(3)]
        system.run_until_idle()
        assert all(op in system.results for op in ops)

    def test_concurrent_writes_get_distinct_tags(self):
        system = build_system()
        ops = [system.invoke_write(bytes([i]), writer=i, at=0.0) for i in range(3)]
        system.run_until_idle()
        tags = {system.results[op].tag for op in ops}
        assert len(tags) == 3

    def test_read_after_concurrent_writes_returns_one_of_them(self):
        system = build_system()
        for i in range(3):
            system.invoke_write(f"value-{i}".encode(), writer=i, at=0.0)
        system.run_until_idle()
        result = system.read()
        assert result.value in {b"value-0", b"value-1", b"value-2"}

    def test_history_of_concurrent_writes_is_atomic(self):
        system = build_system(latency=BoundedLatencyModel(seed=3))
        for i in range(3):
            system.invoke_write(f"value-{i}".encode(), writer=i, at=float(i) * 0.5)
        system.invoke_read(reader=0, at=1.0)
        system.invoke_read(reader=1, at=2.0)
        system.run_until_idle()
        history = system.history().complete()
        assert check_atomicity_by_tags(history) is None
        assert LinearizabilityChecker().check(history) is None


class TestReaderWriterConcurrency:
    def test_read_concurrent_with_write_returns_old_or_new(self):
        system = build_system()
        system.write(b"old")
        system.run_until_idle()
        system.invoke_write(b"new", writer=1, at=100.0)
        read_op = system.invoke_read(reader=0, at=100.5)
        system.run_until_idle()
        assert system.results[read_op].value in {b"old", b"new"}

    def test_read_is_served_from_l1_during_concurrency(self):
        # A read overlapping a write should be served a full value from the
        # temporary storage (cost n1 * 1), not require decoding coded data.
        system = build_system()
        system.invoke_write(b"concurrent value", writer=0, at=0.0)
        read_op = system.invoke_read(reader=0, at=1.0)
        system.run_until_idle()
        assert system.results[read_op].value in {system.config.initial_value, b"concurrent value"}

    def test_reads_concurrent_with_many_writes_remain_atomic(self):
        system = build_system(num_writers=3, num_readers=3,
                              latency=BoundedLatencyModel(seed=17))
        ops = []
        for round_index in range(3):
            base = round_index * 40.0
            for writer in range(3):
                ops.append(system.invoke_write(
                    f"r{round_index}-w{writer}".encode(), writer=writer, at=base + writer * 0.3
                ))
            for reader in range(3):
                ops.append(system.invoke_read(reader=reader, at=base + 1.0 + reader * 0.2))
        system.run_until_idle()
        assert all(op in system.results for op in ops)
        history = system.history().complete()
        assert check_atomicity_by_tags(history) is None

    def test_no_new_old_inversion_between_sequential_readers(self):
        # Two reads that do not overlap must not observe values in the wrong
        # order even when a write is concurrent with both (atomicity).
        system = build_system(latency=BoundedLatencyModel(seed=23))
        system.write(b"old")
        system.run_until_idle()
        system.invoke_write(b"new", writer=1, at=200.0)
        first_read = system.invoke_read(reader=0, at=200.2)
        system.run_until_idle()
        second_read = system.invoke_read(reader=1)
        system.run_until_idle()
        first_value = system.results[first_read].value
        second_value = system.results[second_read].value
        if first_value == b"new":
            assert second_value == b"new"


class TestAsynchronousExecutions:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_mixed_workloads_are_atomic(self, seed):
        system = build_system(num_writers=2, num_readers=2,
                              latency=BoundedLatencyModel(seed=seed))
        generator = WorkloadGenerator(seed=seed, client_spacing=60.0)
        workload = generator.mixed_random(num_operations=12, write_fraction=0.5,
                                          duration=200.0, num_writers=2, num_readers=2)
        report = WorkloadRunner(system).run(workload)
        assert report.incomplete_operations == 0
        assert report.is_atomic

    @pytest.mark.parametrize("seed", [11, 12])
    def test_unbounded_latency_executions_are_atomic(self, seed):
        # Exponential delays model pure asynchrony (no latency bound at all).
        system = build_system(num_writers=2, num_readers=2,
                              latency=ExponentialLatencyModel(tau0=1, tau1=1, tau2=5, seed=seed))
        generator = WorkloadGenerator(seed=seed, client_spacing=150.0)
        workload = generator.mixed_random(num_operations=10, write_fraction=0.4,
                                          duration=400.0, num_writers=2, num_readers=2)
        report = WorkloadRunner(system).run(workload)
        assert report.incomplete_operations == 0
        assert report.is_atomic

    def test_burst_workload_all_operations_complete(self):
        system = build_system(num_writers=4, num_readers=4,
                              latency=BoundedLatencyModel(seed=31),
                              config=LDSConfig(n1=5, n2=6, f1=1, f2=1))
        generator = WorkloadGenerator(seed=31)
        workload = generator.concurrent_burst(num_writers=4, num_readers=4)
        report = WorkloadRunner(system).run(workload)
        assert report.incomplete_operations == 0
        assert report.is_atomic
        assert report.read_latency.count == 4
        assert report.write_latency.count == 4
