"""Unit tests for crash-failure injection."""

import pytest

from repro.net.failures import (
    CrashSchedule,
    FailureInjector,
    max_l1_failures,
    max_l2_failures,
)
from repro.net.latency import FixedLatencyModel, L1
from repro.net.network import Network
from repro.net.process import Process


def build_network(pids):
    network = Network(latency_model=FixedLatencyModel())
    for pid in pids:
        process = Process(pid, link_class=L1)
        process.on_message = lambda sender, message: None  # type: ignore[assignment]
        network.register(process)
    return network


class TestCrashSchedule:
    def test_add_and_apply(self):
        network = build_network(["a", "b", "c"])
        schedule = CrashSchedule().add("a", 1.0).add("c", 2.0)
        schedule.apply(network)
        network.run_until_idle()
        assert not network.alive("a")
        assert network.alive("b")
        assert not network.alive("c")

    def test_crash_happens_at_the_scheduled_time(self):
        network = build_network(["a"])
        CrashSchedule().add("a", 5.0).apply(network)
        network.run(until=4.0)
        assert network.alive("a")
        network.run_until_idle()
        assert not network.alive("a")

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            CrashSchedule().add("a", -1.0)

    def test_unknown_process_rejected(self):
        network = build_network(["a"])
        with pytest.raises(ValueError):
            CrashSchedule().add("ghost", 1.0).apply(network)

    def test_merge_prefers_other(self):
        merged = CrashSchedule().add("a", 1.0).merge(CrashSchedule().add("a", 9.0))
        assert merged.crash_times["a"] == 9.0
        assert len(merged) == 1


class TestFailureInjector:
    def test_random_schedule_respects_budget(self):
        injector = FailureInjector(seed=1)
        schedule = injector.random_schedule(["a", "b", "c", "d"], max_failures=2,
                                            time_range=(0.0, 10.0))
        assert len(schedule) == 2
        assert all(0.0 <= t <= 10.0 for t in schedule.crash_times.values())

    def test_random_schedule_exact_count(self):
        injector = FailureInjector(seed=2)
        schedule = injector.random_schedule(["a", "b", "c"], max_failures=2,
                                            time_range=(0.0, 1.0), failures=1)
        assert len(schedule) == 1

    def test_budget_violation_rejected(self):
        injector = FailureInjector(seed=3)
        with pytest.raises(ValueError):
            injector.random_schedule(["a", "b"], max_failures=1, time_range=(0, 1), failures=2)

    def test_not_enough_candidates_rejected(self):
        injector = FailureInjector(seed=3)
        with pytest.raises(ValueError):
            injector.random_schedule(["a"], max_failures=3, time_range=(0, 1))

    def test_targeted_schedule(self):
        schedule = FailureInjector().targeted_schedule(["x", "y"], time=3.0)
        assert schedule.crash_times == {"x": 3.0, "y": 3.0}

    def test_staggered_schedule(self):
        schedule = FailureInjector().staggered_schedule(["x", "y", "z"], start=1.0, interval=2.0)
        assert schedule.crash_times == {"x": 1.0, "y": 3.0, "z": 5.0}

    def test_seeded_injector_is_reproducible(self):
        a = FailureInjector(seed=7).random_schedule(list("abcdef"), 3, (0, 5))
        b = FailureInjector(seed=7).random_schedule(list("abcdef"), 3, (0, 5))
        assert a.crash_times == b.crash_times


class TestFailureBudgets:
    @pytest.mark.parametrize("n1,expected", [(1, 0), (2, 0), (3, 1), (5, 2), (100, 49)])
    def test_max_l1_failures(self, n1, expected):
        assert max_l1_failures(n1) == expected
        assert max_l1_failures(n1) < n1 / 2

    @pytest.mark.parametrize("n2,expected", [(1, 0), (3, 0), (4, 1), (7, 2), (100, 33)])
    def test_max_l2_failures(self, n2, expected):
        assert max_l2_failures(n2) == expected
        assert max_l2_failures(n2) < n2 / 3
