"""Unit tests for the metadata broadcast primitive of Section III."""

import pytest

from repro.net.broadcast import BroadcastEnvelope, BroadcastPrimitive
from repro.net.latency import FixedLatencyModel, L1
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.process import Process


class BroadcastServer(Process):
    """Minimal server that consumes broadcast payloads into a list."""

    def __init__(self, pid, group, relay_set):
        super().__init__(pid, link_class=L1)
        self.group = group
        self.relay_set = relay_set
        self.consumed = []
        self.broadcaster = None

    def attach(self, network):
        super().attach(network)
        self.broadcaster = BroadcastPrimitive(self, self.group, self.relay_set)

    def on_message(self, sender, message):
        if isinstance(message, BroadcastEnvelope):
            inner = self.broadcaster.handle(message)
            if inner is not None:
                self.consumed.append(inner.kind)


def build_group(n, relay_count):
    group = [f"s{i}" for i in range(n)]
    relay_set = group[:relay_count]
    network = Network(latency_model=FixedLatencyModel(tau0=1, tau1=1, tau2=1))
    servers = [BroadcastServer(pid, group, relay_set) for pid in group]
    network.register_all(servers)
    return network, servers


class TestBroadcastPrimitive:
    def test_all_servers_consume_exactly_once(self):
        network, servers = build_group(n=6, relay_count=3)
        servers[4].broadcaster.broadcast(Message(kind="commit"))
        network.run_until_idle()
        assert all(server.consumed == ["commit"] for server in servers)

    def test_initiator_also_consumes_its_own_broadcast(self):
        network, servers = build_group(n=5, relay_count=2)
        servers[0].broadcaster.broadcast(Message(kind="m"))
        network.run_until_idle()
        assert servers[0].consumed == ["m"]

    def test_consumed_if_one_relay_survives(self):
        # Crash all relays but one immediately after the broadcast is initiated:
        # the surviving relay must still fan the message out to everyone alive.
        network, servers = build_group(n=6, relay_count=3)
        servers[5].broadcaster.broadcast(Message(kind="commit"))
        network.crash("s0")
        network.crash("s1")
        network.run_until_idle()
        alive = [server for server in servers if not server.crashed]
        assert all(server.consumed == ["commit"] for server in alive)

    def test_initiator_crash_after_send_does_not_block_delivery(self):
        network, servers = build_group(n=5, relay_count=2)
        servers[3].broadcaster.broadcast(Message(kind="commit"))
        network.crash("s3")
        network.run_until_idle()
        for server in servers:
            if server.pid != "s3":
                assert server.consumed == ["commit"]

    def test_multiple_broadcasts_are_distinguished(self):
        network, servers = build_group(n=4, relay_count=2)
        servers[0].broadcaster.broadcast(Message(kind="first"))
        servers[1].broadcaster.broadcast(Message(kind="second"))
        network.run_until_idle()
        for server in servers:
            assert sorted(server.consumed) == ["first", "second"]

    def test_broadcast_messages_carry_no_data_cost(self):
        network, servers = build_group(n=5, relay_count=2)
        servers[0].broadcaster.broadcast(Message(kind="commit", data_size=0.0))
        network.run_until_idle()
        assert network.costs.total == 0.0

    def test_relay_set_must_be_group_members(self):
        process = Process("x", link_class=L1)
        with pytest.raises(ValueError):
            BroadcastPrimitive(process, group=["a", "b"], relay_set=["z"])

    def test_empty_relay_set_rejected(self):
        process = Process("x", link_class=L1)
        with pytest.raises(ValueError):
            BroadcastPrimitive(process, group=["x"], relay_set=[])

    def test_envelope_without_inner_rejected(self):
        network, servers = build_group(n=3, relay_count=1)
        with pytest.raises(ValueError):
            servers[0].broadcaster.handle(BroadcastEnvelope(broadcast_id=("x", 1)))
