"""Unit tests for the network (reliable channels, crashes, cost tracking)."""

import pytest

from repro.net.latency import CLIENT, FixedLatencyModel, L1
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.process import Process


class Echo(Process):
    """Test process recording what it receives and optionally replying."""

    def __init__(self, pid, link_class=L1, reply=False):
        super().__init__(pid, link_class)
        self.received = []
        self.reply = reply

    def on_message(self, sender, message):
        self.received.append((sender, message, self.now))
        if self.reply:
            self.send(sender, Message(kind="reply", op_id=message.op_id))


def make_network(**kwargs):
    return Network(latency_model=FixedLatencyModel(tau0=1, tau1=2, tau2=10), **kwargs)


class TestMembership:
    def test_register_and_lookup(self):
        network = make_network()
        process = Echo("a")
        network.register(process)
        assert network.process("a") is process
        assert network.alive("a")

    def test_duplicate_pid_rejected(self):
        network = make_network()
        network.register(Echo("a"))
        with pytest.raises(ValueError):
            network.register(Echo("a"))

    def test_unknown_sender_or_destination(self):
        network = make_network()
        network.register(Echo("a"))
        with pytest.raises(ValueError):
            network.send("ghost", "a", Message())
        with pytest.raises(ValueError):
            network.send("a", "ghost", Message())


class TestDelivery:
    def test_message_delivered_after_link_latency(self):
        network = make_network()
        a, b = Echo("a"), Echo("b")
        network.register_all([a, b])
        network.send("a", "b", Message(kind="ping"))
        network.run_until_idle()
        assert len(b.received) == 1
        assert b.received[0][2] == pytest.approx(1.0)  # L1 <-> L1 link

    def test_client_server_latency_applied(self):
        network = make_network()
        client, server = Echo("c", link_class=CLIENT), Echo("s", reply=True)
        network.register_all([client, server])
        network.send("c", "s", Message(kind="request"))
        network.run_until_idle()
        assert server.received[0][2] == pytest.approx(2.0)
        assert client.received[0][2] == pytest.approx(4.0)  # round trip

    def test_reordering_is_possible_with_different_links(self):
        # A message over a slow link sent first can arrive after a later fast one.
        network = Network(latency_model=FixedLatencyModel(tau0=1, tau1=5, tau2=10))
        fast, slow, target = Echo("fast"), Echo("slow", link_class=CLIENT), Echo("t")
        network.register_all([fast, slow, target])
        network.send("slow", "t", Message(kind="first"))
        network.send("fast", "t", Message(kind="second"))
        network.run_until_idle()
        kinds = [message.kind for _, message, _ in target.received]
        assert kinds == ["second", "first"]

    def test_delivery_hook_invoked(self):
        network = make_network()
        a, b = Echo("a"), Echo("b")
        network.register_all([a, b])
        seen = []
        network.add_delivery_hook(lambda s, d, m: seen.append((s, d, m.kind)))
        network.send("a", "b", Message(kind="hooked"))
        network.run_until_idle()
        assert seen == [("a", "b", "hooked")]


class TestCrashes:
    def test_crashed_destination_drops_message(self):
        network = make_network()
        a, b = Echo("a"), Echo("b")
        network.register_all([a, b])
        network.crash("b")
        network.send("a", "b", Message())
        network.run_until_idle()
        assert b.received == []
        assert network.dropped_to_crashed == 1

    def test_crashed_sender_cannot_send(self):
        network = make_network()
        a, b = Echo("a"), Echo("b")
        network.register_all([a, b])
        network.crash("a")
        a.send("b", Message())
        network.run_until_idle()
        assert b.received == []

    def test_message_in_flight_survives_sender_crash(self):
        # The paper's channel model: the sender may fail after placing the
        # message in the channel; delivery depends only on the destination.
        network = make_network()
        a, b = Echo("a"), Echo("b")
        network.register_all([a, b])
        network.send("a", "b", Message(kind="survives"))
        network.crash("a")
        network.run_until_idle()
        assert [m.kind for _, m, _ in b.received] == ["survives"]

    def test_crash_mid_execution_stops_future_deliveries(self):
        network = make_network()
        a, b = Echo("a"), Echo("b")
        network.register_all([a, b])
        network.send("a", "b", Message(kind="early"))
        network.simulator.schedule(0.5, lambda: network.crash("b"))
        network.send("a", "b", Message(kind="late"))
        network.run_until_idle()
        assert b.received == []


class TestCostTracking:
    def test_cost_charged_at_send_time(self):
        network = make_network()
        a, b = Echo("a"), Echo("b")
        network.register_all([a, b])
        network.send("a", "b", Message(kind="data", data_size=1.0, op_id="op1"))
        network.send("a", "b", Message(kind="meta", data_size=0.0, op_id="op1"))
        assert network.costs.total == pytest.approx(1.0)
        assert network.costs.messages_sent == 2
        assert network.costs.operation_cost("op1") == pytest.approx(1.0)

    def test_costs_grouped_by_kind(self):
        network = make_network()
        a, b = Echo("a"), Echo("b")
        network.register_all([a, b])
        for _ in range(3):
            network.send("a", "b", Message(kind="coded", data_size=0.25))
        assert network.costs.by_kind["coded"] == pytest.approx(0.75)
        assert network.costs.messages_by_kind["coded"] == 3

    def test_merge_operations(self):
        network = make_network()
        a, b = Echo("a"), Echo("b")
        network.register_all([a, b])
        network.send("a", "b", Message(data_size=1.0, op_id="write"))
        network.send("a", "b", Message(data_size=0.5, op_id="internal-1"))
        network.send("a", "b", Message(data_size=0.5, op_id="internal-2"))
        total = network.costs.merge_operations("write", ["internal-1", "internal-2"])
        assert total == pytest.approx(2.0)

    def test_unknown_operation_costs_zero(self):
        assert make_network().costs.operation_cost("nope") == 0.0
