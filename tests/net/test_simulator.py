"""Unit tests for the discrete-event simulator."""

import pytest

from repro.net.simulator import Simulator


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(5.0, lambda: order.append("late"))
        simulator.schedule(1.0, lambda: order.append("early"))
        simulator.schedule(3.0, lambda: order.append("middle"))
        simulator.run_until_idle()
        assert order == ["early", "middle", "late"]

    def test_ties_break_by_scheduling_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(1.0, lambda: order.append("first"))
        simulator.schedule(1.0, lambda: order.append("second"))
        simulator.run_until_idle()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        simulator = Simulator()
        times = []
        simulator.schedule(2.5, lambda: times.append(simulator.now))
        simulator.run_until_idle()
        assert times == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        simulator = Simulator()
        simulator.schedule(5.0, lambda: None)
        simulator.run_until_idle()
        with pytest.raises(ValueError):
            simulator.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        simulator = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                simulator.schedule(1.0, lambda: chain(depth + 1))

        simulator.schedule(0.0, lambda: chain(0))
        simulator.run_until_idle()
        assert seen == [0, 1, 2, 3]
        assert simulator.now == 3.0


class TestRunControl:
    def test_run_until_time_bound(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(10.0, lambda: fired.append(10))
        simulator.run(until=5.0)
        assert fired == [1]
        assert simulator.now == 5.0
        simulator.run_until_idle()
        assert fired == [1, 10]

    def test_run_with_event_budget(self):
        simulator = Simulator()
        fired = []
        for i in range(5):
            simulator.schedule(i, lambda i=i: fired.append(i))
        simulator.run(max_events=2)
        assert fired == [0, 1]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        simulator = Simulator()
        for i in range(3):
            simulator.schedule(i, lambda: None)
        simulator.run_until_idle()
        assert simulator.events_processed == 3

    def test_run_until_idle_budget_guard(self):
        simulator = Simulator()

        def forever():
            simulator.schedule(1.0, forever)

        simulator.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            simulator.run_until_idle(max_events=100)


class TestEdgeCases:
    """Past-due scheduling, budget exhaustion, and idle clock advances."""

    def test_schedule_at_exactly_now_is_allowed(self):
        simulator = Simulator()
        simulator.schedule(5.0, lambda: None)
        simulator.run_until_idle()
        fired = []
        simulator.schedule_at(5.0, lambda: fired.append(simulator.now))
        simulator.run_until_idle()
        assert fired == [5.0]

    def test_schedule_zero_delay_runs_at_current_time(self):
        simulator = Simulator()
        times = []
        simulator.schedule(3.0, lambda: simulator.schedule(
            0.0, lambda: times.append(simulator.now)))
        simulator.run_until_idle()
        assert times == [3.0]

    def test_schedule_at_epsilon_before_now_rejected(self):
        simulator = Simulator()
        simulator.schedule(2.0, lambda: None)
        simulator.run_until_idle()
        with pytest.raises(ValueError):
            simulator.schedule_at(2.0 - 1e-9, lambda: None)

    def test_past_due_rejection_inside_a_callback(self):
        simulator = Simulator()
        errors = []

        def callback():
            try:
                simulator.schedule_at(simulator.now - 0.5, lambda: None)
            except ValueError as exc:
                errors.append(str(exc))

        simulator.schedule(1.0, callback)
        simulator.run_until_idle()
        assert len(errors) == 1

    def test_max_events_exhaustion_resumes_where_it_stopped(self):
        simulator = Simulator()
        fired = []
        for i in range(6):
            simulator.schedule(float(i), lambda i=i: fired.append(i))
        simulator.run(max_events=4)
        assert fired == [0, 1, 2, 3]
        assert simulator.now == 3.0
        simulator.run(max_events=4)
        assert fired == [0, 1, 2, 3, 4, 5]
        assert simulator.events_processed == 6

    def test_max_events_does_not_count_cancelled_events(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule(1.0, lambda: fired.append("cancelled"))
        simulator.schedule(2.0, lambda: fired.append("a"))
        simulator.schedule(3.0, lambda: fired.append("b"))
        handle.cancel()
        simulator.run(max_events=2)
        assert fired == ["a", "b"]

    def test_clock_advances_to_until_when_idle(self):
        simulator = Simulator()
        simulator.run(until=42.0)
        assert simulator.now == 42.0
        # A second bounded run with a smaller horizon must not rewind.
        simulator.run(until=10.0)
        assert simulator.now == 42.0

    def test_clock_advances_past_last_event_to_until(self):
        simulator = Simulator()
        simulator.schedule(1.0, lambda: None)
        simulator.run(until=7.5)
        assert simulator.now == 7.5

    def test_event_exactly_at_until_runs(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(5.0, lambda: fired.append("edge"))
        simulator.run(until=5.0)
        assert fired == ["edge"]
        assert simulator.now == 5.0

    def test_until_and_max_events_combine(self):
        simulator = Simulator()
        fired = []
        for i in range(5):
            simulator.schedule(float(i), lambda i=i: fired.append(i))
        simulator.run(until=10.0, max_events=2)
        assert fired == [0, 1]
        simulator.run(until=2.5)
        assert fired == [0, 1, 2]
        assert simulator.now == 2.5

    def test_step_skips_cancelled_and_runs_next_real_event(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule(1.0, lambda: fired.append("no"))
        simulator.schedule(2.0, lambda: fired.append("yes"))
        handle.cancel()
        assert simulator.step() is True
        assert fired == ["yes"]
        assert simulator.events_processed == 1


class TestPeek:
    def test_peek_time_on_empty_queue(self):
        assert Simulator().peek_time() is None

    def test_peek_time_reports_next_event_without_running_it(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(4.0, lambda: fired.append(4))
        simulator.schedule(2.0, lambda: fired.append(2))
        assert simulator.peek_time() == 2.0
        assert fired == []
        assert simulator.now == 0.0

    def test_peek_time_skips_cancelled_head(self):
        simulator = Simulator()
        handle = simulator.schedule(1.0, lambda: None)
        simulator.schedule(3.0, lambda: None)
        handle.cancel()
        assert simulator.peek_time() == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule(1.0, lambda: fired.append("no"))
        handle.cancel()
        simulator.run_until_idle()
        assert fired == []
        assert handle.cancelled

    def test_cancel_one_of_many(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda: fired.append("a"))
        handle = simulator.schedule(2.0, lambda: fired.append("b"))
        simulator.schedule(3.0, lambda: fired.append("c"))
        handle.cancel()
        simulator.run_until_idle()
        assert fired == ["a", "c"]
