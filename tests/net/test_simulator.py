"""Unit tests for the discrete-event simulator."""

import pytest

from repro.net.simulator import Simulator


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(5.0, lambda: order.append("late"))
        simulator.schedule(1.0, lambda: order.append("early"))
        simulator.schedule(3.0, lambda: order.append("middle"))
        simulator.run_until_idle()
        assert order == ["early", "middle", "late"]

    def test_ties_break_by_scheduling_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule(1.0, lambda: order.append("first"))
        simulator.schedule(1.0, lambda: order.append("second"))
        simulator.run_until_idle()
        assert order == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        simulator = Simulator()
        times = []
        simulator.schedule(2.5, lambda: times.append(simulator.now))
        simulator.run_until_idle()
        assert times == [2.5]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_in_the_past_rejected(self):
        simulator = Simulator()
        simulator.schedule(5.0, lambda: None)
        simulator.run_until_idle()
        with pytest.raises(ValueError):
            simulator.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_more_events(self):
        simulator = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                simulator.schedule(1.0, lambda: chain(depth + 1))

        simulator.schedule(0.0, lambda: chain(0))
        simulator.run_until_idle()
        assert seen == [0, 1, 2, 3]
        assert simulator.now == 3.0


class TestRunControl:
    def test_run_until_time_bound(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda: fired.append(1))
        simulator.schedule(10.0, lambda: fired.append(10))
        simulator.run(until=5.0)
        assert fired == [1]
        assert simulator.now == 5.0
        simulator.run_until_idle()
        assert fired == [1, 10]

    def test_run_with_event_budget(self):
        simulator = Simulator()
        fired = []
        for i in range(5):
            simulator.schedule(i, lambda i=i: fired.append(i))
        simulator.run(max_events=2)
        assert fired == [0, 1]

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_processed_counter(self):
        simulator = Simulator()
        for i in range(3):
            simulator.schedule(i, lambda: None)
        simulator.run_until_idle()
        assert simulator.events_processed == 3

    def test_run_until_idle_budget_guard(self):
        simulator = Simulator()

        def forever():
            simulator.schedule(1.0, forever)

        simulator.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            simulator.run_until_idle(max_events=100)


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        simulator = Simulator()
        fired = []
        handle = simulator.schedule(1.0, lambda: fired.append("no"))
        handle.cancel()
        simulator.run_until_idle()
        assert fired == []
        assert handle.cancelled

    def test_cancel_one_of_many(self):
        simulator = Simulator()
        fired = []
        simulator.schedule(1.0, lambda: fired.append("a"))
        handle = simulator.schedule(2.0, lambda: fired.append("b"))
        simulator.schedule(3.0, lambda: fired.append("c"))
        handle.cancel()
        simulator.run_until_idle()
        assert fired == ["a", "c"]
