"""Unit tests for the process base class and message envelope."""

import pytest

from repro.net.latency import CLIENT, FixedLatencyModel, L1
from repro.net.messages import Message
from repro.net.network import Network
from repro.net.process import Process


class Recorder(Process):
    def __init__(self, pid, link_class=L1):
        super().__init__(pid, link_class)
        self.received = []

    def on_message(self, sender, message):
        self.received.append((sender, message))


class TestMessage:
    def test_kind_defaults_to_class_name(self):
        assert Message().kind == "Message"

    def test_explicit_kind_preserved(self):
        assert Message(kind="PING").kind == "PING"

    def test_describe_mentions_size_and_operation(self):
        text = Message(kind="DATA", data_size=0.5, op_id="op-1").describe()
        assert "DATA" in text and "op-1" in text

    def test_payload_is_per_instance(self):
        a, b = Message(), Message()
        a.payload["x"] = 1
        assert b.payload == {}


class TestProcess:
    def test_unattached_process_has_no_network(self):
        process = Recorder("lonely")
        with pytest.raises(RuntimeError):
            _ = process.network

    def test_send_and_receive_via_network(self):
        network = Network(latency_model=FixedLatencyModel())
        a, b = Recorder("a"), Recorder("b", link_class=CLIENT)
        network.register_all([a, b])
        a.send("b", Message(kind="hello"))
        network.run_until_idle()
        assert [message.kind for _, message in b.received] == ["hello"]

    def test_crashed_process_send_is_a_noop(self):
        network = Network(latency_model=FixedLatencyModel())
        a, b = Recorder("a"), Recorder("b")
        network.register_all([a, b])
        a.crash()
        a.send("b", Message())
        network.run_until_idle()
        assert b.received == []

    def test_crash_records_time_and_is_idempotent(self):
        network = Network(latency_model=FixedLatencyModel())
        a = Recorder("a")
        network.register(a)
        a.crash()
        first_time = a.crash_time
        a.crash()
        assert a.crashed and a.crash_time == first_time

    def test_schedule_skips_callback_after_crash(self):
        network = Network(latency_model=FixedLatencyModel())
        a = Recorder("a")
        network.register(a)
        fired = []
        a.schedule(5.0, lambda: fired.append("ran"))
        a.crash()
        network.run_until_idle()
        assert fired == []

    def test_repr_shows_status(self):
        process = Recorder("p")
        assert "alive" in repr(process)
        process.crashed = True
        assert "crashed" in repr(process)

    def test_on_start_hook_called_by_network(self):
        class Starter(Recorder):
            started = False

            def on_start(self):
                self.started = True

        network = Network(latency_model=FixedLatencyModel())
        starter = Starter("s")
        network.register(starter)
        network.start()
        assert starter.started
