"""Unit tests for the per-link latency models."""

import pytest

from repro.net.latency import (
    CLIENT,
    L1,
    L2,
    BoundedLatencyModel,
    ExponentialLatencyModel,
    FixedLatencyModel,
    UniformLatencyModel,
    link_type,
)


class TestLinkClassification:
    def test_l1_to_l1_is_tau0(self):
        assert link_type(L1, L1) == "tau0"

    def test_client_l1_is_tau1_both_directions(self):
        assert link_type(CLIENT, L1) == "tau1"
        assert link_type(L1, CLIENT) == "tau1"

    def test_l1_l2_is_tau2_both_directions(self):
        assert link_type(L1, L2) == "tau2"
        assert link_type(L2, L1) == "tau2"

    def test_unusual_links_get_a_sane_default(self):
        assert link_type(CLIENT, CLIENT) == "tau1"
        assert link_type(CLIENT, L2) == "tau2"


class TestFixedLatency:
    def test_values_per_class(self):
        model = FixedLatencyModel(tau0=0.5, tau1=1.0, tau2=10.0)
        assert model.delay(L1, L1) == 0.5
        assert model.delay(CLIENT, L1) == 1.0
        assert model.delay(L1, L2) == 10.0

    def test_bound_equals_delay(self):
        model = FixedLatencyModel(tau0=2, tau1=3, tau2=4)
        assert model.bound(L1, L2) == model.delay(L1, L2)

    def test_positive_latencies_required(self):
        with pytest.raises(ValueError):
            FixedLatencyModel(tau0=0)


class TestBoundedLatency:
    def test_samples_respect_the_bound(self):
        model = BoundedLatencyModel(tau0=1, tau1=2, tau2=10, seed=3)
        for _ in range(200):
            assert model.delay(L1, L2) <= 10
            assert model.delay(CLIENT, L1) <= 2
            assert model.delay(L1, L1) <= 1

    def test_samples_respect_the_minimum_fraction(self):
        model = BoundedLatencyModel(tau1=4, minimum_fraction=0.5, seed=1)
        assert all(model.delay(CLIENT, L1) >= 2.0 for _ in range(100))

    def test_seed_reproducibility(self):
        a = BoundedLatencyModel(seed=42)
        b = BoundedLatencyModel(seed=42)
        assert [a.delay(L1, L2) for _ in range(10)] == [b.delay(L1, L2) for _ in range(10)]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            BoundedLatencyModel(minimum_fraction=0.0)


class TestUniformAndExponential:
    def test_uniform_range(self):
        model = UniformLatencyModel(low=1.0, high=2.0, seed=5)
        samples = [model.delay(CLIENT, L1) for _ in range(100)]
        assert all(1.0 <= sample <= 2.0 for sample in samples)
        assert model.bound(CLIENT, L1) == 2.0

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformLatencyModel(low=3.0, high=2.0)

    def test_exponential_positive_and_unbounded_declared(self):
        model = ExponentialLatencyModel(tau0=1, tau1=1, tau2=5, seed=9)
        assert all(model.delay(L1, L2) > 0 for _ in range(50))
        assert model.bound(L1, L2) is None

    def test_exponential_mean_tracks_tau(self):
        model = ExponentialLatencyModel(tau0=1, tau1=1, tau2=10, seed=13)
        samples = [model.delay(L1, L2) for _ in range(3000)]
        assert 8.0 < sum(samples) / len(samples) < 12.0
