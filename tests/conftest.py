"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import BoundedLatencyModel, FixedLatencyModel


@pytest.fixture
def small_config() -> LDSConfig:
    """A small but non-trivial configuration: n1=5, n2=6, f1=1, f2=1 (k=3, d=4)."""
    return LDSConfig(n1=5, n2=6, f1=1, f2=1)


@pytest.fixture
def symmetric_config() -> LDSConfig:
    """A symmetric configuration with n1 = n2 and f1 = f2 (so k = d)."""
    return LDSConfig.symmetric(n=7, f=2)


@pytest.fixture
def fixed_latency() -> FixedLatencyModel:
    """Deterministic latencies tau0 = tau1 = 1, tau2 = 10 (edge-like)."""
    return FixedLatencyModel(tau0=1.0, tau1=1.0, tau2=10.0)


@pytest.fixture
def bounded_latency() -> BoundedLatencyModel:
    """Randomised but bounded latencies with a fixed seed."""
    return BoundedLatencyModel(tau0=1.0, tau1=1.0, tau2=10.0, seed=7)


@pytest.fixture
def small_system(small_config, fixed_latency) -> LDSSystem:
    """A ready-to-use LDS deployment with two writers and two readers."""
    return LDSSystem(small_config, num_writers=2, num_readers=2,
                     latency_model=fixed_latency)
