"""Tests for metric summaries and the workload runner."""

import pytest

from repro.baselines.abd import ABDSystem
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.net.latency import FixedLatencyModel
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.metrics import LatencySummary, percentile, summarize_latencies
from repro.workloads.runner import WorkloadRunner


class TestMetrics:
    def test_percentile_nearest_rank(self):
        values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
        assert percentile(values, 0.5) == 5
        assert percentile(values, 0.95) == 10
        assert percentile(values, 0.0) == 1

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    def test_summary_of_empty_sequence(self):
        summary = summarize_latencies([])
        assert summary == LatencySummary.empty()
        assert summary.count == 0

    def test_summary_statistics(self):
        summary = summarize_latencies([4.0, 2.0, 6.0, 8.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(5.0)
        assert summary.minimum == 2.0 and summary.maximum == 8.0
        assert summary.p50 == 4.0


class TestRunnerWithLDS:
    def test_sequential_workload_report(self):
        config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
        system = LDSSystem(config, num_writers=1, num_readers=1,
                           latency_model=FixedLatencyModel())
        workload = WorkloadGenerator(seed=1).sequential(num_writes=2, num_reads=2, spacing=60)
        report = WorkloadRunner(system).run(workload)
        assert report.incomplete_operations == 0
        assert report.is_atomic
        assert report.write_latency.count == 2
        assert report.read_latency.count == 2
        assert len(report.write_costs) == 2
        assert report.mean_write_cost > report.mean_read_cost > 0
        assert report.total_communication_cost > 0

    def test_runner_can_skip_atomicity_check(self):
        config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
        system = LDSSystem(config, latency_model=FixedLatencyModel())
        workload = WorkloadGenerator(seed=2).sequential(num_writes=1, num_reads=1, spacing=60)
        report = WorkloadRunner(system, check_atomicity=False).run(workload)
        assert report.atomicity_violation is None
        assert report.incomplete_operations == 0


class TestRunnerWithBaselines:
    def test_same_workload_runs_on_abd(self):
        system = ABDSystem(n=5, num_writers=1, num_readers=1,
                           latency_model=FixedLatencyModel())
        workload = WorkloadGenerator(seed=3).sequential(num_writes=2, num_reads=2, spacing=30)
        report = WorkloadRunner(system).run(workload)
        assert report.incomplete_operations == 0
        assert report.is_atomic
        # ABD write cost is n, read cost up to 2n.
        assert report.mean_write_cost == pytest.approx(5.0)
        assert report.mean_read_cost >= 5.0


class TestKeyedRunnerSessions:
    def test_legacy_batch_path_stamps_sessions(self):
        """Without a kernel the runner still stamps every operation's
        session identity, so merged histories carry sessions on both
        execution paths."""
        from repro.cluster.deployment import ShardedCluster
        from repro.workloads.runner import KeyedWorkloadRunner

        cluster = ShardedCluster(LDSConfig(n1=3, n2=4, f1=1, f2=1),
                                 ["pool-0", "pool-1"], seed=5)
        generator = WorkloadGenerator(seed=5, client_spacing=60.0)
        workload = generator.keyed_random([f"k{i}" for i in range(4)],
                                          12, 0.5, 300.0)
        report = KeyedWorkloadRunner(cluster).run(workload)
        assert report.is_atomic
        assert len(report.history) == 12
        assert all(op.session == "client-0" for op in report.history)


class TestReadDistribution:
    def _stats(self):
        from repro.cluster.router import RouterStats
        stats = RouterStats()
        stats.primary_reads = 4
        stats.follower_reads = 6
        stats.session_fallbacks = 1
        stats.failover_deferrals = 2
        stats.policy_choices = 10
        stats.policy_honored = 9
        stats.reads_by_replica = {"pool-0": 4, "pool-1": 3, "pool-2": 3}
        return stats

    def test_from_router_stats(self):
        from repro.workloads.metrics import ReadDistribution
        distribution = ReadDistribution.from_router_stats(self._stats())
        assert distribution.total == 10
        assert distribution.follower_fraction == 0.6
        assert distribution.policy_hit_rate == 0.9
        assert distribution.session_fallbacks == 1
        assert distribution.failover_deferrals == 2
        assert distribution.counts == {"pool-0": 4, "pool-1": 3, "pool-2": 3}

    def test_balance_measures(self):
        from repro.workloads.metrics import ReadDistribution
        even = ReadDistribution(counts={"a": 5, "b": 5}, primary_reads=5,
                                follower_reads=5)
        assert even.coefficient_of_variation == 0.0
        assert even.max_over_mean == 1.0
        skewed = ReadDistribution(counts={"a": 9, "b": 1}, primary_reads=9,
                                  follower_reads=1)
        assert skewed.max_over_mean == pytest.approx(1.8)
        assert skewed.coefficient_of_variation > 0.5

    def test_empty_distribution_is_all_zeros(self):
        from repro.workloads.metrics import ReadDistribution
        empty = ReadDistribution()
        assert empty.total == 0
        assert empty.follower_fraction == 0.0
        assert empty.mean == 0.0
        assert empty.coefficient_of_variation == 0.0
        assert "total=0" in empty.describe()


class TestQuorumDistribution:
    def test_quorum_counters_flow_from_router_stats(self):
        from repro.cluster.router import RouterStats
        from repro.workloads.metrics import ReadDistribution
        stats = RouterStats()
        stats.primary_reads = 2
        stats.quorum_reads = 8
        stats.quorum_depths = {2: 6, 1: 2}
        stats.read_repairs = 3
        stats.forwarded_writes = 5
        stats.retired_fallbacks = 1
        stats.session_fallbacks = 4
        distribution = ReadDistribution.from_router_stats(stats)
        assert distribution.total == 10  # quorum reads count once each
        assert distribution.quorum_reads == 8
        assert distribution.mean_quorum_depth == pytest.approx(14 / 8)
        assert distribution.read_repairs == 3
        assert distribution.read_repair_rate == pytest.approx(3 / 8)
        assert distribution.forwarded_writes == 5
        assert distribution.retired_fallbacks == 1
        assert distribution.session_fallback_rate == pytest.approx(0.4)
        assert "quorum_reads=8" in distribution.describe()
        assert "forwarded_writes=5" in distribution.describe()

    def test_legacy_stats_objects_default_the_new_counters(self):
        # from_router_stats stays duck-typed: an object exposing only the
        # pre-quorum counters must still build a distribution.
        from repro.workloads.metrics import ReadDistribution

        class LegacyStats:
            reads_by_replica = {"a": 1}
            primary_reads = 1
            follower_reads = 0
            session_fallbacks = 0
            failover_deferrals = 0
            policy_hit_rate = 1.0

        distribution = ReadDistribution.from_router_stats(LegacyStats())
        assert distribution.quorum_reads == 0
        assert distribution.mean_quorum_depth == 0.0
        assert distribution.read_repair_rate == 0.0
        assert distribution.forwarded_writes == 0
