"""Tests for workload generation."""

import pytest

from repro.consistency.history import READ, WRITE
from repro.workloads.generator import ScheduledOperation, Workload, WorkloadGenerator


class TestScheduledOperation:
    def test_valid_write(self):
        op = ScheduledOperation(kind=WRITE, at=1.0, value=b"x")
        assert op.kind == WRITE

    def test_write_requires_value(self):
        with pytest.raises(ValueError):
            ScheduledOperation(kind=WRITE, at=1.0)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            ScheduledOperation(kind="scan", at=1.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ScheduledOperation(kind=READ, at=-1.0)


class TestWorkload:
    def test_counts_and_sorting(self):
        workload = Workload()
        workload.add(ScheduledOperation(kind=READ, at=5.0))
        workload.add(ScheduledOperation(kind=WRITE, at=1.0, value=b"x"))
        assert len(workload) == 2
        assert workload.read_count == 1 and workload.write_count == 1
        assert [op.at for op in workload.sorted_operations()] == [1.0, 5.0]


class TestGenerators:
    def test_sequential_shape(self):
        workload = WorkloadGenerator(seed=1).sequential(num_writes=3, num_reads=2, spacing=10)
        assert workload.write_count == 3 and workload.read_count == 2
        times = [op.at for op in workload.sorted_operations()]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(10)

    def test_concurrent_burst_uses_distinct_clients(self):
        workload = WorkloadGenerator(seed=2).concurrent_burst(num_writers=3, num_readers=2)
        writers = {op.client_index for op in workload.operations if op.kind == WRITE}
        readers = {op.client_index for op in workload.operations if op.kind == READ}
        assert writers == {0, 1, 2}
        assert readers == {0, 1}

    def test_read_heavy_has_single_write(self):
        workload = WorkloadGenerator(seed=3).read_heavy(num_rounds=4, readers=2)
        assert workload.write_count == 1
        assert workload.read_count == 8

    def test_mixed_random_respects_write_fraction_bounds(self):
        generator = WorkloadGenerator(seed=4, client_spacing=10)
        workload = generator.mixed_random(num_operations=40, write_fraction=0.5,
                                          duration=100, num_writers=2, num_readers=2)
        assert len(workload) == 40
        assert 5 <= workload.write_count <= 35

    def test_mixed_random_invalid_fraction(self):
        with pytest.raises(ValueError):
            WorkloadGenerator().mixed_random(10, 1.5, 10)

    def test_mixed_random_keeps_clients_well_formed(self):
        generator = WorkloadGenerator(seed=5, client_spacing=20)
        workload = generator.mixed_random(num_operations=30, write_fraction=0.5,
                                          duration=50, num_writers=2, num_readers=2)
        per_client = {}
        for op in workload.operations:
            per_client.setdefault((op.kind, op.client_index), []).append(op.at)
        for times in per_client.values():
            times.sort()
            assert all(later - earlier >= 20 - 1e-9
                       for earlier, later in zip(times, times[1:]))

    def test_write_heavy_with_trailing_read(self):
        workload = WorkloadGenerator(seed=6).write_heavy_with_trailing_read(
            num_writes=6, num_writers=3, burst_window=5.0, read_at=2.0,
        )
        assert workload.write_count == 6
        assert workload.read_count == 1

    def test_seeded_generators_are_reproducible(self):
        a = WorkloadGenerator(seed=9).mixed_random(20, 0.5, 50)
        b = WorkloadGenerator(seed=9).mixed_random(20, 0.5, 50)
        assert [(op.kind, op.at) for op in a.operations] == [
            (op.kind, op.at) for op in b.operations
        ]
