"""End-to-end scenarios combining the whole stack.

These tests model the edge-computing situations that motivate the paper:
an edge cache serving a hot object, a bursty multi-writer sensor feed, a
multi-object fleet, and a head-to-head comparison of LDS against the ABD
and CAS baselines on an identical workload.
"""

import pytest

from repro.baselines.abd import ABDSystem
from repro.baselines.cas import CASSystem
from repro.consistency.linearizability import check_atomicity_by_tags
from repro.core.analysis import mbr_read_cost, mbr_storage_cost_l2, mbr_write_cost
from repro.core.config import LDSConfig
from repro.core.multi_object import MultiObjectSystem
from repro.core.system import LDSSystem
from repro.net.latency import BoundedLatencyModel, FixedLatencyModel
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.runner import WorkloadRunner


class TestEdgeCacheScenario:
    def test_hot_object_reads_avoid_the_backend_while_writes_are_fresh(self):
        # tau2 >> tau1: reads that overlap recent writes complete much faster
        # than reads that must reach back to L2.
        config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
        system = LDSSystem(config, num_writers=1, num_readers=3,
                           latency_model=FixedLatencyModel(tau0=1, tau1=1, tau2=30))
        system.invoke_write(b"popular object v1", writer=0, at=0.0)
        hot_reads = [system.invoke_read(reader=i, at=1.0 + i) for i in range(3)]
        system.run_until_idle()
        hot_durations = [system.results[op].duration for op in hot_reads]
        cold_read = system.read()  # long after quiescence: regenerate from L2
        assert max(hot_durations) < cold_read.duration
        assert all(system.results[op].value in {b"popular object v1", b"\x00"}
                   for op in hot_reads)

    def test_sensor_burst_scenario_stays_atomic_and_live(self):
        config = LDSConfig(n1=7, n2=9, f1=2, f2=2)
        system = LDSSystem(config, num_writers=4, num_readers=2,
                           latency_model=BoundedLatencyModel(seed=2))
        generator = WorkloadGenerator(seed=2, client_spacing=80.0)
        workload = generator.write_heavy_with_trailing_read(
            num_writes=8, num_writers=4, burst_window=30.0, read_at=10.0,
        )
        report = WorkloadRunner(system).run(workload)
        assert report.incomplete_operations == 0
        assert report.is_atomic


class TestMultiObjectFleet:
    def test_fleet_of_objects_under_load_matches_storage_model(self):
        config = LDSConfig.symmetric(n=5, f=1)
        fleet = MultiObjectSystem(config, num_objects=6, seed=5,
                                  latency_factory=lambda i: BoundedLatencyModel(seed=i))
        fleet.schedule_uniform_write_load(writes_per_unit_time=0.4, duration=50.0)
        fleet.run_all()
        assert fleet.all_operations_complete()
        per_object = mbr_storage_cost_l2(config.n2, config.k, config.d)
        assert fleet.total_l2_cost() == pytest.approx(6 * per_object, rel=1e-9)
        for system in fleet.systems:
            assert check_atomicity_by_tags(system.history().complete()) is None


class TestCrossAlgorithmComparison:
    def build_workload(self, seed=9):
        return WorkloadGenerator(seed=seed, client_spacing=80.0).sequential(
            num_writes=3, num_reads=3, spacing=80.0
        )

    def test_all_three_algorithms_agree_on_values_and_atomicity(self):
        config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
        lds = LDSSystem(config, latency_model=FixedLatencyModel())
        abd = ABDSystem(n=5, latency_model=FixedLatencyModel())
        cas = CASSystem(n=6, k=3, latency_model=FixedLatencyModel())
        for system in (lds, abd, cas):
            report = WorkloadRunner(system).run(self.build_workload())
            assert report.incomplete_operations == 0
            assert report.is_atomic
            final_reads = [op.value for op in report.history.reads()]
            assert final_reads[-1] is not None

    def test_lds_backend_storage_beats_replication_and_write_cost_shape_holds(self):
        config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
        lds = LDSSystem(config, latency_model=FixedLatencyModel())
        abd = ABDSystem(n=6, latency_model=FixedLatencyModel())
        lds_write = lds.write(b"compare me")
        lds.run_until_idle()
        abd_write = abd.write(b"compare me")

        # Permanent storage: coded back-end vs replication (Figure 6 point).
        assert lds.storage.l2_cost < abd.storage_cost
        # Write cost: both are Theta(n); the measured values match the models.
        assert lds.operation_cost(lds_write.op_id) == pytest.approx(
            mbr_write_cost(config.n1, config.n2, config.k, config.d), rel=1e-9
        )
        assert abd.operation_cost(abd_write.op_id) == pytest.approx(6.0)

    def test_lds_quiescent_read_cheaper_than_abd_read_for_large_systems(self):
        config = LDSConfig(n1=11, n2=11, f1=2, f2=2)
        lds = LDSSystem(config, latency_model=FixedLatencyModel())
        lds.write(b"x")
        lds.run_until_idle()
        lds_read_cost = lds.operation_cost(lds.read().op_id)
        abd = ABDSystem(n=11, latency_model=FixedLatencyModel())
        abd.write(b"x")
        abd_read_cost = abd.operation_cost(abd.read().op_id)
        assert lds_read_cost == pytest.approx(
            mbr_read_cost(config.n1, config.n2, config.k, config.d, delta=0), rel=1e-9
        )
        assert lds_read_cost < abd_read_cost
