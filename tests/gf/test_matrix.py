"""Unit tests for dense GF(2^8) matrices."""

import numpy as np
import pytest

from repro.gf.gf256 import GF256
from repro.gf.matrix import GFMatrix, SingularMatrixError


class TestConstruction:
    def test_zeros(self):
        matrix = GFMatrix.zeros(2, 3)
        assert matrix.shape == (2, 3)
        assert not matrix.data.any()

    def test_identity(self):
        identity = GFMatrix.identity(4)
        assert identity.shape == (4, 4)
        assert np.array_equal(identity.data, np.eye(4, dtype=np.uint8))

    def test_from_rows(self):
        matrix = GFMatrix.from_rows([[1, 2], [3, 4]])
        assert matrix[1, 0] == 3

    def test_one_dimensional_input_becomes_row(self):
        matrix = GFMatrix([1, 2, 3])
        assert matrix.shape == (1, 3)

    def test_three_dimensional_input_rejected(self):
        with pytest.raises(ValueError):
            GFMatrix(np.zeros((2, 2, 2)))

    def test_equality(self):
        assert GFMatrix([[1, 2]]) == GFMatrix([[1, 2]])
        assert GFMatrix([[1, 2]]) != GFMatrix([[1, 3]])


class TestBasicOps:
    def test_addition_is_elementwise_xor(self):
        a = GFMatrix([[1, 2], [3, 4]])
        b = GFMatrix([[5, 6], [7, 8]])
        assert np.array_equal((a + b).data, a.data ^ b.data)

    def test_addition_shape_mismatch(self):
        with pytest.raises(ValueError):
            GFMatrix([[1]]) + GFMatrix([[1, 2]])

    def test_transpose(self):
        matrix = GFMatrix([[1, 2, 3], [4, 5, 6]])
        assert matrix.T.shape == (3, 2)
        assert matrix.T[2, 1] == 6

    def test_matmul_with_identity(self):
        matrix = GFMatrix([[9, 8], [7, 6]])
        assert matrix @ GFMatrix.identity(2) == matrix

    def test_matvec(self):
        matrix = GFMatrix([[1, 0], [0, 1], [1, 1]])
        result = matrix.matvec([5, 9])
        assert list(result) == [5, 9, 5 ^ 9]

    def test_matvec_length_mismatch(self):
        with pytest.raises(ValueError):
            GFMatrix([[1, 0]]).matvec([1, 2, 3])

    def test_scale(self):
        matrix = GFMatrix([[1, 2], [3, 4]])
        scaled = matrix.scale(7)
        for i in range(2):
            for j in range(2):
                assert scaled[i, j] == GF256.mul(7, int(matrix[i, j]))

    def test_hstack_vstack(self):
        a = GFMatrix([[1, 2]])
        b = GFMatrix([[3, 4]])
        assert a.hstack(b).shape == (1, 4)
        assert a.vstack(b).shape == (2, 2)

    def test_hstack_mismatch(self):
        with pytest.raises(ValueError):
            GFMatrix([[1, 2]]).hstack(GFMatrix([[1, 2], [3, 4]]))

    def test_submatrix_rows_and_columns(self):
        matrix = GFMatrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        sub = matrix.submatrix([0, 2], [1, 2])
        assert np.array_equal(sub.data, np.array([[2, 3], [8, 9]], dtype=np.uint8))

    def test_is_symmetric(self):
        assert GFMatrix([[1, 2], [2, 3]]).is_symmetric()
        assert not GFMatrix([[1, 2], [4, 3]]).is_symmetric()
        assert not GFMatrix([[1, 2, 3]]).is_symmetric()


class TestElimination:
    def test_rank_of_identity(self):
        assert GFMatrix.identity(5).rank() == 5

    def test_rank_of_zero_matrix(self):
        assert GFMatrix.zeros(3, 3).rank() == 0

    def test_rank_of_duplicated_rows(self):
        matrix = GFMatrix([[1, 2, 3], [1, 2, 3], [4, 5, 6]])
        assert matrix.rank() == 2

    def test_inverse_roundtrip(self):
        matrix = GFMatrix([[2, 3, 5], [7, 11, 13], [17, 19, 23]])
        assert matrix.is_invertible()
        product = matrix @ matrix.inverse()
        assert product == GFMatrix.identity(3)

    def test_inverse_of_singular_raises(self):
        singular = GFMatrix([[1, 2], [1, 2]])
        with pytest.raises(SingularMatrixError):
            singular.inverse()

    def test_inverse_of_non_square_raises(self):
        with pytest.raises(SingularMatrixError):
            GFMatrix([[1, 2, 3]]).inverse()

    def test_solve_vector(self):
        matrix = GFMatrix([[2, 3], [5, 7]])
        x_expected = np.array([9, 200], dtype=np.uint8)
        rhs = matrix.matvec(x_expected)
        solution = matrix.solve(rhs)
        assert np.array_equal(solution, x_expected)

    def test_solve_matrix_rhs(self):
        matrix = GFMatrix([[2, 3], [5, 7]])
        unknown = GFMatrix([[1, 2], [3, 4]])
        rhs = matrix @ unknown
        solution = matrix.solve(rhs.data)
        assert np.array_equal(solution, unknown.data)

    def test_solve_dimension_mismatch(self):
        with pytest.raises(ValueError):
            GFMatrix([[1, 0], [0, 1]]).solve([1, 2, 3])

    def test_solve_singular_raises(self):
        with pytest.raises(SingularMatrixError):
            GFMatrix([[1, 1], [1, 1]]).solve([1, 2])
