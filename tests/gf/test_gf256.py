"""Unit tests for GF(2^8) scalar and vector arithmetic."""

import numpy as np
import pytest

from repro.gf.gf256 import GF256


class TestScalarArithmetic:
    def test_addition_is_xor(self):
        assert GF256.add(0x53, 0xCA) == 0x53 ^ 0xCA

    def test_addition_identity(self):
        for value in (0, 1, 77, 255):
            assert GF256.add(value, 0) == value

    def test_subtraction_equals_addition(self):
        assert GF256.sub(0x53, 0xCA) == GF256.add(0x53, 0xCA)

    def test_every_element_is_its_own_additive_inverse(self):
        for value in range(256):
            assert GF256.add(value, value) == 0

    def test_multiplication_by_zero(self):
        assert GF256.mul(0, 123) == 0
        assert GF256.mul(123, 0) == 0

    def test_multiplication_by_one(self):
        for value in (1, 2, 123, 255):
            assert GF256.mul(value, 1) == value

    def test_known_product_aes_field(self):
        # 0x53 * 0xCA = 0x01 in the AES field.
        assert GF256.mul(0x53, 0xCA) == 0x01

    def test_multiplication_commutative(self):
        for a, b in [(3, 7), (200, 45), (255, 254)]:
            assert GF256.mul(a, b) == GF256.mul(b, a)

    def test_multiplication_associative(self):
        a, b, c = 19, 83, 201
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    def test_distributivity(self):
        a, b, c = 91, 140, 33
        left = GF256.mul(a, GF256.add(b, c))
        right = GF256.add(GF256.mul(a, b), GF256.mul(a, c))
        assert left == right

    def test_division_inverts_multiplication(self):
        for a in (1, 7, 130, 255):
            for b in (1, 3, 99, 254):
                assert GF256.div(GF256.mul(a, b), b) == a

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.div(5, 0)

    def test_inverse_times_self_is_one(self):
        for value in range(1, 256):
            assert GF256.mul(value, GF256.inv(value)) == 1

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            GF256.inv(0)

    def test_pow_matches_repeated_multiplication(self):
        base = 9
        product = 1
        for exponent in range(8):
            assert GF256.pow(base, exponent) == product
            product = GF256.mul(product, base)

    def test_pow_zero_base(self):
        assert GF256.pow(0, 0) == 1
        assert GF256.pow(0, 5) == 0

    def test_pow_negative_exponent(self):
        value = 29
        assert GF256.mul(GF256.pow(value, -1), value) == 1

    def test_log_exp_roundtrip(self):
        for value in (1, 2, 3, 100, 255):
            assert GF256.exp(GF256.log(value)) == value

    def test_log_of_zero_raises(self):
        with pytest.raises(ValueError):
            GF256.log(0)

    def test_generator_has_full_order(self):
        seen = set()
        for exponent in range(255):
            seen.add(GF256.exp(exponent))
        assert len(seen) == 255


class TestVectorArithmetic:
    def test_as_array_from_bytes(self):
        array = GF256.as_array(b"\x01\x02\x03")
        assert array.dtype == np.uint8
        assert list(array) == [1, 2, 3]

    def test_add_vec_is_elementwise_xor(self):
        a = [1, 2, 3, 255]
        b = [255, 2, 1, 255]
        assert list(GF256.add_vec(a, b)) == [1 ^ 255, 0, 2, 0]

    def test_mul_vec_matches_scalar(self):
        a = [0, 1, 7, 200, 255]
        b = [13, 0, 99, 200, 1]
        expected = [GF256.mul(x, y) for x, y in zip(a, b)]
        assert list(GF256.mul_vec(a, b)) == expected

    def test_scale_vec_matches_scalar(self):
        vector = [0, 1, 2, 3, 100, 255]
        for scalar in (0, 1, 2, 77, 255):
            expected = [GF256.mul(scalar, v) for v in vector]
            assert list(GF256.scale_vec(scalar, vector)) == expected

    def test_dot_product_matches_manual(self):
        a = [3, 5, 7]
        b = [11, 13, 17]
        expected = 0
        for x, y in zip(a, b):
            expected ^= GF256.mul(x, y)
        assert GF256.dot(a, b) == expected

    def test_dot_of_empty_vectors_is_zero(self):
        assert GF256.dot([], []) == 0

    def test_matmul_identity(self):
        matrix = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        identity = np.eye(2, dtype=np.uint8)
        assert np.array_equal(GF256.matmul(matrix, identity), matrix)

    def test_matmul_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            GF256.matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            GF256.matmul(np.zeros(3, dtype=np.uint8), np.zeros((3, 1), dtype=np.uint8))

    def test_matmul_against_scalar_computation(self):
        a = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.uint8)
        b = np.array([[7, 8], [9, 10], [11, 12]], dtype=np.uint8)
        result = GF256.matmul(a, b)
        for i in range(2):
            for j in range(2):
                expected = 0
                for l in range(3):
                    expected ^= GF256.mul(int(a[i, l]), int(b[l, j]))
                assert result[i, j] == expected
