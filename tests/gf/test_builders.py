"""Unit tests for structured matrix builders (Vandermonde, Cauchy)."""

from itertools import combinations

import pytest

from repro.gf.builders import cauchy_matrix, systematic_vandermonde, vandermonde_matrix
from repro.gf.matrix import GFMatrix


class TestVandermonde:
    def test_shape(self):
        assert vandermonde_matrix(6, 3).shape == (6, 3)

    def test_first_column_is_all_ones(self):
        matrix = vandermonde_matrix(5, 3)
        assert all(matrix[i, 0] == 1 for i in range(5))

    def test_any_k_rows_invertible(self):
        matrix = vandermonde_matrix(7, 3)
        for rows in combinations(range(7), 3):
            assert matrix.submatrix(rows).is_invertible()

    def test_distinct_points_required(self):
        with pytest.raises(ValueError):
            vandermonde_matrix(3, 2, points=[1, 1, 2])

    def test_nonzero_points_required(self):
        with pytest.raises(ValueError):
            vandermonde_matrix(3, 2, points=[0, 1, 2])

    def test_point_count_must_match_rows(self):
        with pytest.raises(ValueError):
            vandermonde_matrix(3, 2, points=[1, 2])

    def test_too_many_rows_rejected(self):
        with pytest.raises(ValueError):
            vandermonde_matrix(300, 2)

    def test_custom_points(self):
        matrix = vandermonde_matrix(3, 3, points=[1, 2, 3])
        assert matrix[0, 2] == 1  # 1^2
        assert matrix[1, 1] == 2


class TestCauchy:
    def test_shape(self):
        assert cauchy_matrix(4, 3).shape == (4, 3)

    def test_every_square_submatrix_invertible(self):
        matrix = cauchy_matrix(5, 4)
        for size in (1, 2, 3, 4):
            for rows in combinations(range(5), size):
                for cols in combinations(range(4), size):
                    assert matrix.submatrix(rows, cols).is_invertible()

    def test_size_limit(self):
        with pytest.raises(ValueError):
            cauchy_matrix(200, 100)


class TestSystematicVandermonde:
    def test_top_block_is_identity(self):
        matrix = systematic_vandermonde(6, 3)
        assert matrix.submatrix(range(3)) == GFMatrix.identity(3)

    def test_any_k_rows_still_invertible(self):
        matrix = systematic_vandermonde(6, 3)
        for rows in combinations(range(6), 3):
            assert matrix.submatrix(rows).is_invertible()

    def test_requires_enough_rows(self):
        with pytest.raises(ValueError):
            systematic_vandermonde(2, 3)
