"""Unit tests for polynomials over GF(2^8)."""

import pytest

from repro.gf.gf256 import GF256
from repro.gf.polynomial import GFPolynomial


class TestBasics:
    def test_zero_polynomial(self):
        zero = GFPolynomial.zero()
        assert zero.is_zero()
        assert zero.degree == -1

    def test_trailing_zeros_trimmed(self):
        poly = GFPolynomial([1, 2, 0, 0])
        assert poly.degree == 1
        assert poly.coefficients == [1, 2]

    def test_constant(self):
        assert GFPolynomial.constant(7).evaluate(123) == 7

    def test_monomial(self):
        poly = GFPolynomial.monomial(3, coefficient=5)
        assert poly.degree == 3
        assert poly.evaluate(2) == GF256.mul(5, GF256.pow(2, 3))

    def test_equality(self):
        assert GFPolynomial([1, 2]) == GFPolynomial([1, 2, 0])
        assert GFPolynomial([1]) != GFPolynomial([2])


class TestArithmetic:
    def test_addition_is_coefficientwise_xor(self):
        a = GFPolynomial([1, 2, 3])
        b = GFPolynomial([4, 5])
        assert (a + b).coefficients == [1 ^ 4, 2 ^ 5, 3]

    def test_addition_cancels_itself(self):
        poly = GFPolynomial([7, 9, 11])
        assert (poly + poly).is_zero()

    def test_multiplication_by_zero(self):
        assert (GFPolynomial([1, 2]) * GFPolynomial.zero()).is_zero()

    def test_multiplication_degree(self):
        a = GFPolynomial([1, 1])
        b = GFPolynomial([1, 0, 1])
        assert (a * b).degree == 3

    def test_multiplication_matches_evaluation(self):
        a = GFPolynomial([3, 1, 4])
        b = GFPolynomial([1, 5])
        product = a * b
        for x in (0, 1, 2, 77, 255):
            assert product.evaluate(x) == GF256.mul(a.evaluate(x), b.evaluate(x))

    def test_scale(self):
        poly = GFPolynomial([1, 2, 3])
        scaled = poly.scale(9)
        for x in (0, 3, 200):
            assert scaled.evaluate(x) == GF256.mul(9, poly.evaluate(x))

    def test_evaluate_many(self):
        poly = GFPolynomial([5, 1])
        assert poly.evaluate_many([0, 1, 2]) == [5, 5 ^ 1, 5 ^ 2]


class TestInterpolation:
    def test_interpolates_through_all_points(self):
        points = [(1, 10), (2, 200), (3, 7), (4, 99)]
        poly = GFPolynomial.interpolate(points)
        assert poly.degree <= 3
        for x, y in points:
            assert poly.evaluate(x) == y

    def test_recovers_original_polynomial(self):
        original = GFPolynomial([17, 42, 9])
        xs = [1, 2, 3]
        points = [(x, original.evaluate(x)) for x in xs]
        recovered = GFPolynomial.interpolate(points)
        assert recovered == original

    def test_duplicate_x_rejected(self):
        with pytest.raises(ValueError):
            GFPolynomial.interpolate([(1, 2), (1, 3)])

    def test_single_point(self):
        poly = GFPolynomial.interpolate([(5, 123)])
        assert poly.evaluate(5) == 123
        assert poly.degree <= 0
