"""Unit tests for the project symbol table / call graph.

Covers name resolution across import aliases and module boundaries,
fixpoint termination on recursive and mutually-recursive call cycles,
purity propagation with witness chains, and the precision guarantee
(ambiguous method names produce no edge rather than a wrong one).
"""

from __future__ import annotations

from repro.lint import engine
from repro.lint.engine import ProjectContext, lint_sources


def _project(files):
    contexts = []
    for path, source in files.items():
        ctx, error = engine._build_context(source, path)
        assert error is None, error
        contexts.append(ctx)
    return ProjectContext(contexts)


def _function(index, name):
    matches = [f for f in index.functions if f.name == name]
    assert len(matches) == 1, f"{name}: {matches}"
    return matches[0]


def test_local_call_resolves_to_module_function():
    project = _project({"mod.py": (
        "def helper():\n"
        "    return 1\n"
        "def caller():\n"
        "    return helper()\n"
    )})
    index = project.index
    caller = _function(index, "caller")
    edges = index.precise_callees(caller)
    assert [callee.name for _, callee in edges] == ["helper"]


def test_import_alias_resolves_across_modules():
    project = _project({
        "pkg/util.py": (
            "def compute():\n"
            "    return 7\n"
        ),
        "pkg/main.py": (
            "from pkg.util import compute as crunch\n"
            "def driver():\n"
            "    return crunch()\n"
        ),
    })
    index = project.index
    driver = _function(index, "driver")
    edges = index.precise_callees(driver)
    assert len(edges) == 1
    _, callee = edges[0]
    assert callee.name == "compute"
    assert callee.ctx.path == "pkg/util.py"


def test_self_method_call_resolves_within_class():
    project = _project({"mod.py": (
        "class Box:\n"
        "    def inner(self):\n"
        "        return 0\n"
        "    def outer(self):\n"
        "        return self.inner()\n"
    )})
    index = project.index
    outer = _function(index, "outer")
    edges = index.precise_callees(outer)
    assert [callee.qualname for _, callee in edges] == ["mod:Box.inner"]


def test_ambiguous_method_name_produces_no_precise_edge():
    project = _project({"mod.py": (
        "class A:\n"
        "    def poke(self):\n"
        "        return 1\n"
        "class B:\n"
        "    def poke(self):\n"
        "        return 2\n"
        "def caller(thing):\n"
        "    return thing.poke()\n"
    )})
    index = project.index
    caller = _function(index, "caller")
    assert index.precise_callees(caller) == []


def test_purity_fixpoint_terminates_on_mutual_recursion():
    project = _project({"mod.py": (
        "def ping(n):\n"
        "    return pong(n - 1)\n"
        "def pong(n):\n"
        "    return ping(n - 1)\n"
        "def solo(n):\n"
        "    return solo(n - 1)\n"
    )})
    purity = project.purity
    assert purity == {}  # pure cycle converges to pure, and terminates


def test_purity_propagates_with_witness_chain():
    project = _project({"mod.py": (
        "def deep(router):\n"
        "    router.invoke_write('k', b'v')\n"
        "def shallow(router):\n"
        "    deep(router)\n"
        "def top(router):\n"
        "    shallow(router)\n"
    )})
    index = project.index
    purity = project.purity
    top = _function(index, "top")
    assert top in purity
    # The witness chain walks from the first hop down to the syntactic
    # mutation site.
    assert purity[top] == ["shallow()", "deep()", ".invoke_write()"]


def test_sd01_flags_transitive_mutation_across_modules():
    findings = lint_sources([
        ("cluster/helpers.py",
         "def drain(router):\n"
         "    router.flush_key('k')\n"),
        ("obs/probe.py",
         "from cluster.helpers import drain\n"
         "class Probe:\n"
         "    def tick(self, router):\n"
         "        drain(router)\n"),
    ])
    assert [f.rule for f in findings] == ["SD01"]
    finding = findings[0]
    assert finding.path == "obs/probe.py"
    assert "drain()" in finding.message
    assert ".flush_key()" in finding.message


def test_sd01_transitive_respects_pragma_in_owning_module():
    findings = lint_sources([
        ("cluster/helpers.py",
         "def drain(router):\n"
         "    router.flush_key('k')\n"),
        ("obs/probe.py",
         "from cluster.helpers import drain\n"
         "class Probe:\n"
         "    def tick(self, router):\n"
         "        drain(router)  # simlint: disable=SD01 -- drill harness\n"),
    ])
    assert findings == []
