"""Per-rule fixture suites: every rule has true-positive and
false-positive fixtures under ``tests/lint/fixtures/``.

The TP fixture must produce only findings of its own rule (the exact
expected count, so trigger drift is caught); the FP fixture must scan
completely clean under the full rule set.
"""

from __future__ import annotations

import os

import pytest

from repro.lint.engine import lint_file

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: fixture stem -> (rule id, expected true-positive count).
CASES = {
    "nd01": ("ND01", 5),
    "nd02": ("ND02", 3),
    "nd03": ("ND03", 4),
    "nd04": ("ND04", 3),
    "nd05": ("ND05", 4),
    "rp01": ("RP01", 3),
    "rp02": ("RP02", 2),
    "sd01": ("SD01", 3),
    "sd02": ("SD02", 2),
    "sd03": ("SD03", 4),
    "sd04": ("SD04", 5),
    "td01": ("TD01", 3),
    "td02": ("TD02", 2),
    "td03": ("TD03", 3),
}

#: Rules scoped by path live under a matching fixture subdirectory:
#: SD01 only fires inside ``obs/``, SD04 inside ``cluster/``/``sim/``.
_SCOPED_SUBDIRS = {"sd01": "obs", "sd04": "cluster"}


def _fixture_path(stem: str, kind: str) -> str:
    subdir = _SCOPED_SUBDIRS.get(stem, "")
    return os.path.join(FIXTURES, subdir, f"{stem}_{kind}.py")


@pytest.mark.parametrize("stem", sorted(CASES))
def test_true_positive_fixture_fails_its_rule(stem):
    rule_id, expected = CASES[stem]
    findings = lint_file(_fixture_path(stem, "tp"))
    assert findings, f"{stem}_tp.py produced no findings"
    assert {f.rule for f in findings} == {rule_id}
    assert len(findings) == expected


@pytest.mark.parametrize("stem", sorted(CASES))
def test_false_positive_fixture_scans_clean(stem):
    findings = lint_file(_fixture_path(stem, "fp"))
    assert findings == [], [f.format() for f in findings]


@pytest.mark.parametrize("stem", sorted(CASES))
def test_select_isolates_the_rule(stem):
    rule_id, expected = CASES[stem]
    findings = lint_file(_fixture_path(stem, "tp"), select=[rule_id])
    assert len(findings) == expected
