"""SD02 true positives: literal absolute times pinned to the timeline."""


def arm(kernel, tick):
    kernel.schedule_at(120.0, tick)
    kernel.schedule_probe(time=45.0, callback=tick)
