"""RP02 true positives: one RNG stream escaping to two independent
consumers -- their draw sequences interleave, so adding a draw in one
silently perturbs the other."""

import random


def build_models(seed):
    rng = random.Random(seed)
    latency = LatencyModel(rng)
    workload = WorkloadFeed(rng)  # second consumer of the same stream
    return latency, workload


class SharedHolder:
    def __init__(self, seed):
        self._rng = random.Random(seed)

    def wire(self, repair_factory, probe_factory):
        repair = repair_factory(self._rng)
        probe = probe_factory(self._rng)  # second consumer
        return repair, probe
