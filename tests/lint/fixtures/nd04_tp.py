"""ND04 true positives: identity/hash inside ordering keys."""


def order_events(events):
    return sorted(events, key=lambda e: id(e))


def pick(nodes):
    nodes.sort(key=lambda n: hash(n.name))
    return min(nodes, key=lambda n: (n.rank, id(n)))
