"""TD02 true positives: arithmetic across time domains that is not the
sanctioned offset translation."""


class DriftEstimator:
    def __init__(self, simulator, kernel):
        self.simulator = simulator
        self.kernel = kernel

    def guess_offset(self):
        # A hand-rolled offset computation standing in for to_global().
        return self.kernel.now - self.simulator.now

    def merged(self):
        return self.simulator.now + self.kernel.now  # meaningless sum
