"""TD02 false positives: sanctioned offset translation and same-domain
durations."""


class PacedScheduler:
    def __init__(self, simulator, kernel):
        self.simulator = simulator
        self.kernel = kernel
        self.offset = 0.0

    def to_global_by_hand(self):
        # Adding the recognised per-source offset IS the translation.
        return self.simulator.now + self.offset

    def to_local_by_hand(self, deadline):
        return deadline - self.offset

    def rearm(self, start_global):
        # Same-domain subtraction is a duration, which is domain-free
        # and may be added back onto either clock.
        elapsed = self.kernel.now - start_global
        return self.kernel.now + elapsed

    def local_step(self):
        return self.simulator.now + 0.25
