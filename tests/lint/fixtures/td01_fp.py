"""TD01 false positives: comparisons stay inside one domain, or cross
only after the sanctioned offset translation."""


class PacedProbe:
    def __init__(self, simulator, kernel, router, source):
        self.simulator = simulator
        self.kernel = kernel
        self.router = router
        self.source = source
        self.offset = 0.0

    def behind(self):
        # local -> global through the source offset, then compare.
        translated = self.simulator.now + self.offset
        return translated < self.kernel.now

    def shard_lag(self, key):
        # shard_now() already answers in global time.
        return self.router.shard_now(key) <= self.kernel.now

    def local_deadline(self, deadline):
        # global -> local through the sanctioned accessor.
        local = self.source.to_local(deadline)
        return local < self.simulator.now

    def envelope(self, other_global):
        return max(self.kernel.now, other_global)
