"""ND03 false-positive guards: sorted wrappers and order-free consumers."""

pool = {"b", "a"}

for name in sorted(pool):
    print(name)

count = len(pool)
biggest = max(pool)
total = sum(1 for _ in pool)
copies = list(sorted(pool))

items = [1, 2, 3]
for item in items:
    print(item)
