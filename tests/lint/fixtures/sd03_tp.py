"""SD03 true positives: raw cross-source simulator clock access."""


def drain(shard):
    shard.system.simulator.run_until_idle()
    return shard.system.simulator.now


def race(other, tick):
    other.simulator.schedule_at(other.simulator.now + 1.0, tick)
