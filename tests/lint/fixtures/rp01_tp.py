"""RP01 true positives: RNG streams whose seed is not derived from the
experiment's root seed, and mid-run re-seeding of a live stream."""

import random


class AdHocGenerator:
    def __init__(self, config):
        self._rng = random.Random(1234)  # literal seed: unreproducible
        self._alt = random.Random(config.epoch)  # not a seed derivation

    def reset(self):
        self._rng.seed(99)  # re-seeding rewinds the draw sequence
