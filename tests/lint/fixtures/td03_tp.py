"""TD03 true positives: a time argument handed to a scheduler in the
wrong domain -- the event lands offset-shifted, possibly in the past."""


class MisScheduler:
    def __init__(self, simulator, kernel, router):
        self.simulator = simulator
        self.kernel = kernel
        self.router = router

    def arm_on_kernel(self, callback):
        # kernel.schedule_at takes GLOBAL time; this hands it local.
        self.kernel.schedule_at(self.simulator.now, callback)

    def arm_on_shard_sim(self, callback):
        # A raw per-shard simulator schedules in LOCAL time.
        self.simulator.schedule_at(self.kernel.now, callback)

    def arm_via_router(self, key, callback):
        # schedule_on_shard's `at` is global; local leaks through.
        self.router.schedule_on_shard(key, self.simulator.now, callback)
