"""TD01 true positives: shard-local time compared against global time.

The two clocks differ by a per-source offset, so every one of these
verdicts flips with source registration order and epoch history.
"""


def deadline_passed(stamp, kernel):
    # Callee compares its parameter against the kernel clock; the
    # caller below injects a shard-local value through it.
    return stamp >= kernel.now


class LagProbe:
    def __init__(self, simulator, kernel):
        self.simulator = simulator
        self.kernel = kernel

    def behind(self):
        return self.simulator.now < self.kernel.now  # direct cross-compare

    def horizon(self):
        return max(self.simulator.now, self.kernel.now)  # max() envelope

    def check(self):
        stamp = self.simulator.now
        return deadline_passed(stamp, self.kernel)  # flagged at this call
