"""ND04 false-positive guards: stable keys, identity outside ordering."""


def order_events(events):
    return sorted(events, key=lambda e: (e.time, e.seq))


def bucket(table, key):
    # hash() outside an ordering key is not flagged.
    return table[hash(key) % len(table)]


def tag(obj):
    return id(obj)
