"""ND02 false-positive guards: virtual time and a justified pragma."""

import time


def remaining(deadline, now):
    # Virtual times passed in by the caller; no clock is read.
    return deadline - now


elapsed = time.perf_counter()  # simlint: disable=ND02 -- harness wall profiling
