"""ND02 true positives: wall-clock reads."""

import datetime
import time
from time import perf_counter

started = time.time()
stamp = datetime.datetime.now()
tick = perf_counter()
