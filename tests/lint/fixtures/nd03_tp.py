"""ND03 true positives: order-sensitive iteration over sets."""

pool = {"b", "a"}

for name in pool:
    print(name)

members = list({"x", "y"})
ordered = [name for name in pool]
label = ",".join(pool | {"c"})
