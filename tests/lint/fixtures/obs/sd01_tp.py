"""SD01 true positives: an observability probe perturbing the run."""


class MeddlingProbe:
    def __init__(self, simulation):
        self.simulation = simulation

    def tick(self):
        self.simulation.invoke_write("k", b"v")
        self.simulation.router.flush_key("k")
        self.simulation.repair.withhold_node("node-0")
