"""SD01 false-positive guards: the pure-probe pattern."""


class PureProbe:
    def __init__(self, simulation, kernel):
        self.simulation = simulation
        self.kernel = kernel
        self.samples = []

    def tick(self):
        # Read-only surfaces and probe re-arming are all fair game.
        self.samples.append(self.kernel.pending_work())
        slots = self.simulation.repair.pending_slots()
        self.samples.append(len(slots))
        self.kernel.schedule_probe(self.kernel.now + 5.0, self.tick)

    def schedule(self, when):
        # A mutating-sounding method on ``self`` is the probe's own
        # machinery, not protocol interference.
        self.schedule_at(when)

    def schedule_at(self, when):
        self.samples.append(when)
