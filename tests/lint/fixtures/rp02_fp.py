"""RP02 false positives: independent derived streams per consumer, and
draws on a stream that never escapes twice."""

import random

from repro.cluster.ring import derive_seed


def build_models(seed):
    latency = LatencyModel(random.Random(derive_seed(seed, "latency")))
    workload = WorkloadFeed(random.Random(derive_seed(seed, "workload")))
    return latency, workload


def single_owner(seed, items):
    rng = random.Random(seed)
    rng.shuffle(items)  # draws on the stream itself are not escapes
    first = rng.choice(items)
    return Sampler(rng), first  # exactly one consumer owns the stream
