"""SD04 false positives: every shape the rule must leave alone."""


class WatchedCoordinator:
    """Pending dicts are fine when the class registers them."""

    def __init__(self):
        self._pending = {}
        self._pending_invocations = {}

    def sanitizer_watches(self):
        return [("pending", self._pending),
                ("pending_invocations", self._pending_invocations)]


class SetBackedCoordinator:
    """Set-valued pending state is not a watchable map."""

    def __init__(self):
        self._pending = set()
        self.in_flight = []


class UnrelatedState:
    """Dict attributes without pending/in-flight naming are out of scope."""

    def __init__(self):
        self._open_handles = {}
        self._results = {}


def build_index():
    # A local variable, not coordinator state.
    pending = {}
    pending["x"] = 1
    return pending
