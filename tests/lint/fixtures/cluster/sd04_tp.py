"""SD04 true positives: coordinator-style pending state the runtime
sanitizer cannot see (no ``sanitizer_watches()`` accessor)."""

from collections import OrderedDict, defaultdict


class LeakyCoordinator:
    """Three unwatchable in-flight maps -> three findings."""

    def __init__(self):
        self._pending = {}
        self._in_flight_reads = dict()
        self.pending_invocations = defaultdict(list)

    def dispatch(self, handle):
        self._pending[handle] = True


class LeakyForwarder:
    """Annotated assignment and an OrderedDict factory both count."""

    def __init__(self):
        self.inflight: dict = {}
        self._pending_forwards = OrderedDict()

    def forward(self, handle):
        self.inflight[handle] = True
