"""ND05 false-positive guards: None-defaults and immutable defaults."""


def append_to(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket


def scale(value, factor=1.0, label=""):
    return value * factor, label


def options(flags=()):
    return tuple(flags)
