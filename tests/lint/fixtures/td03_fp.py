"""TD03 false positives: schedulers fed time in their own domain, or
the relative schedule(delay, ...) form."""


class PacedScheduler:
    def __init__(self, simulator, kernel, router):
        self.simulator = simulator
        self.kernel = kernel
        self.router = router

    def arm_on_kernel(self, key, callback):
        self.kernel.schedule_at(self.router.shard_now(key), callback)

    def arm_probe(self, probe):
        self.kernel.schedule_probe(self.kernel.now, probe)

    def arm_local(self, callback):
        self.simulator.schedule_at(self.simulator.peek_time(), callback)

    def arm_relative(self, callback):
        # The relative form needs no translation at all.
        self.simulator.schedule(0.25, callback)
