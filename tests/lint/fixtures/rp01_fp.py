"""RP01 false positives: every stream's seed traces back to the root
seed, either verbatim or through derive_seed()."""

import random

from repro.cluster.ring import derive_seed


class DisciplinedGenerator:
    def __init__(self, seed, config):
        self._rng = random.Random(seed)
        self._latency = random.Random(derive_seed(seed, "latency"))
        self._workload = random.Random(config.workload_seed)

    def spawn(self, label):
        return random.Random(derive_seed(self.base_seed, "child", label))
