"""ND01 true positives: unseeded global RNG usage."""

import random

import numpy as np
from random import shuffle

jitter = random.random()
unseeded = random.Random()
noise = np.random.rand(4)
generator = np.random.default_rng()


def scramble(items):
    shuffle(items)
    return items
