"""SD03 false-positive guards: owners and sanctioned accessors."""


class ShardOwner:
    def __init__(self, simulator):
        self.simulator = simulator

    def local_time(self):
        # The owner touching its own simulator is in bounds.
        return self.simulator.now


def global_time(router, shard):
    return router.shard_now(shard)


def arm(router, shard, at, tick):
    router.schedule_on_shard(shard, at, tick)
