"""ND01 false-positive guards: seeded instances and unimported names."""

import random

import numpy as np


class Sampler:
    def __init__(self, seed):
        self.rng = random.Random(seed)
        self.gen = np.random.default_rng(seed)

    def draw(self):
        return self.rng.random()


def not_the_module(rand):
    # An unimported name never resolves to the random module, however
    # suggestively its attributes read.
    return rand.random()
