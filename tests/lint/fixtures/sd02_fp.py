"""SD02 false-positive guards: clock-derived and relative scheduling."""


def arm(kernel, interval, tick):
    kernel.schedule_at(kernel.now + interval, tick)
    kernel.schedule(5.0, tick)
    kernel.schedule_probe(kernel.now, tick)


def bootstrap(kernel, boot):
    kernel.schedule_at(0.0, boot)  # simlint: disable=SD02 -- t=0 bootstrap
