"""ND05 true positives: mutable defaults shared across calls."""

from collections import defaultdict


def append_to(item, bucket=[]):
    bucket.append(item)
    return bucket


def register(name, *, registry={}):
    registry[name] = True
    return registry


def index(counts=defaultdict(int)):
    return counts


accumulate = lambda acc={"n": 0}: acc
