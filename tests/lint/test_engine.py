"""Engine-level tests: pragmas, diagnostics, selection, traversal."""

from __future__ import annotations

import pytest

from repro.lint.engine import (
    SYNTAX_ERROR,
    UNKNOWN_PRAGMA_RULE,
    LintError,
    all_rules,
    iter_python_files,
    lint_paths,
    lint_source,
)

UNSEEDED = "import random\nvalue = random.random()\n"


class TestPragmas:
    def test_line_pragma_suppresses_the_named_rule(self):
        source = ("import random\n"
                  "value = random.random()"
                  "  # simlint: disable=ND01 -- calibration only\n")
        assert lint_source(source) == []

    def test_line_pragma_only_covers_its_own_line(self):
        source = ("import random\n"
                  "a = random.random()  # simlint: disable=ND01 -- here\n"
                  "b = random.random()\n")
        findings = lint_source(source)
        assert [(f.rule, f.line) for f in findings] == [("ND01", 3)]

    def test_line_pragma_does_not_cover_other_rules(self):
        source = ("import random\n"
                  "value = random.random()  # simlint: disable=ND02 -- wrong\n")
        assert [f.rule for f in lint_source(source)] == ["ND01"]

    def test_file_pragma_suppresses_module_wide(self):
        source = ("# simlint: disable-file=ND01 -- calibration module\n"
                  "import random\n"
                  "a = random.random()\n"
                  "b = random.random()\n")
        assert lint_source(source) == []

    def test_no_pragmas_mode_reveals_suppressed_findings(self):
        source = ("import random\n"
                  "value = random.random()"
                  "  # simlint: disable=ND01 -- hidden\n")
        findings = lint_source(source, respect_pragmas=False)
        assert [f.rule for f in findings] == ["ND01"]

    def test_unknown_rule_in_pragma_is_reported(self):
        source = "x = 1  # simlint: disable=ND99 -- typo\n"
        findings = lint_source(source)
        assert [f.rule for f in findings] == [UNKNOWN_PRAGMA_RULE]
        assert "ND99" in findings[0].message

    def test_multi_rule_pragma(self):
        source = ("import random\n"
                  "from time import time\n"
                  "value = random.random() + time()"
                  "  # simlint: disable=ND01,ND02 -- drill\n")
        assert lint_source(source) == []


class TestDiagnostics:
    def test_syntax_error_becomes_a_finding(self):
        findings = lint_source("def broken(:\n")
        assert [f.rule for f in findings] == [SYNTAX_ERROR]

    def test_findings_carry_location_and_format(self):
        findings = lint_source(UNSEEDED, path="pkg/mod.py")
        assert len(findings) == 1
        finding = findings[0]
        assert finding.path == "pkg/mod.py"
        assert finding.line == 2
        assert finding.format().startswith("pkg/mod.py:2:")
        assert "ND01" in finding.format()


class TestSelection:
    def test_select_narrows_to_named_rules(self):
        source = ("import random\n"
                  "from time import time\n"
                  "value = random.random() + time()\n")
        assert {f.rule for f in lint_source(source)} == {"ND01", "ND02"}
        assert {f.rule for f in lint_source(source, select=["ND02"])} \
            == {"ND02"}

    def test_unknown_selection_is_an_error(self):
        with pytest.raises(LintError):
            lint_source("x = 1\n", select=["ND99"])

    def test_rule_ids_are_unique_and_stable(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert len(ids) == len(set(ids))
        assert ids == sorted(ids)  # ND tier first, then SD


class TestTraversal:
    def test_directory_scan_collects_sorted_python_files(self, tmp_path):
        (tmp_path / "b.py").write_text(UNSEEDED)
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "c.py").write_text(UNSEEDED)
        (tmp_path / "notes.txt").write_text("not python")
        files = iter_python_files([str(tmp_path)])
        assert [f.rsplit("/", 1)[-1] for f in files] == ["a.py", "b.py"]
        findings = lint_paths([str(tmp_path)])
        assert [f.rule for f in findings] == ["ND01"]

    def test_missing_path_is_an_error(self):
        with pytest.raises(LintError):
            lint_paths(["/no/such/path-for-simlint"])
