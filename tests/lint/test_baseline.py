"""Tests for fingerprints, the baseline ledger, the diff-aware
``--changed`` mode, and the incremental-adoption CLI surface."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.lint.baseline import (
    SourceCache,
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import Finding, LintError

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")

BAD_MODULE = "import random\nvalue = random.random()\n"


def _run(*args: str, cwd: str = REPO_ROOT) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True, text=True, env=env, cwd=cwd)


def _finding(line=3, path="pkg/a.py", rule="ND01"):
    return Finding(rule=rule, path=path, line=line, col=1, message="m")


def test_fingerprint_ignores_line_numbers_not_content():
    assert fingerprint(_finding(line=3), "x = bad()") \
        == fingerprint(_finding(line=30), "  x = bad()  ")
    assert fingerprint(_finding(), "x = bad()") \
        != fingerprint(_finding(), "x = worse()")
    assert fingerprint(_finding(rule="ND01"), "x = bad()") \
        != fingerprint(_finding(rule="ND02"), "x = bad()")


def test_baseline_round_trip_counts_occurrences(tmp_path):
    cache = SourceCache({"pkg/a.py": "dup()\ndup()\ndup()\n"})
    two = [_finding(line=1), _finding(line=2)]  # identical line content
    ledger = tmp_path / "baseline.json"
    assert write_baseline(str(ledger), two, cache) == 2
    accepted = load_baseline(str(ledger))
    assert sum(accepted.values()) == 2

    # The same two findings are fully suppressed...
    fresh, suppressed = apply_baseline(two, accepted, cache)
    assert (fresh, suppressed) == ([], 2)
    # ...but a third occurrence of the same pattern is fresh.
    three = two + [_finding(line=3)]
    fresh, suppressed = apply_baseline(three, accepted, cache)
    assert suppressed == 2
    assert [f.line for f in fresh] == [3]


def test_baseline_rejects_unrecognised_format(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text(json.dumps({"version": 99, "fingerprints": {}}))
    with pytest.raises(LintError):
        load_baseline(str(bad))
    bad.write_text("not json")
    with pytest.raises(LintError):
        load_baseline(str(bad))


def test_cli_write_then_scan_with_baseline(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BAD_MODULE)
    ledger = tmp_path / "lint-baseline.json"

    result = _run("--write-baseline", str(ledger), str(target))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "recorded 1 finding(s)" in result.stderr

    result = _run("--baseline", str(ledger), str(target))
    assert result.returncode == 0, result.stdout + result.stderr
    assert "suppressed 1 known finding(s)" in result.stderr

    # A new hazard alongside the baselined one still fails the scan.
    target.write_text(BAD_MODULE + "also = random.random()\n")
    result = _run("--baseline", str(ledger), str(target))
    assert result.returncode == 1
    assert result.stdout.count("ND01") == 1

    result = _run("--baseline", str(tmp_path / "missing.json"), str(target))
    assert result.returncode == 2


def test_cli_format_json_and_sarif(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(BAD_MODULE)

    result = _run("--format", "json", str(target))
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["counts"] == {"ND01": 1}

    out = tmp_path / "scan.sarif"
    result = _run("--format", "sarif", "--output", str(out), str(target))
    assert result.returncode == 1
    payload = json.loads(out.read_text())
    assert payload["version"] == "2.1.0"
    assert payload["runs"][0]["results"][0]["ruleId"] == "ND01"


def test_cli_require_justification(tmp_path):
    bare = tmp_path / "bare.py"
    bare.write_text(
        "import random\n"
        "value = random.random()  # simlint: disable=ND01\n")
    result = _run(str(bare))
    assert result.returncode == 0  # pragma suppresses by default
    result = _run("--require-justification", str(bare))
    assert result.returncode == 1
    assert "E003" in result.stdout

    justified = tmp_path / "justified.py"
    justified.write_text(
        "import random\n"
        "value = random.random()  # simlint: disable=ND01 -- calibration\n")
    result = _run("--require-justification", str(justified))
    assert result.returncode == 0, result.stdout + result.stderr


def _git(cwd, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *args],
        cwd=cwd, check=True, capture_output=True)


def test_cli_changed_reports_only_touched_files(tmp_path):
    repo = tmp_path / "work"
    repo.mkdir()
    (repo / "stale.py").write_text(BAD_MODULE)
    (repo / "touched.py").write_text("clean = 1\n")
    _git(repo, "init", "-q")
    _git(repo, "add", ".")
    _git(repo, "commit", "-qm", "seed")

    # Both files carry findings, but only touched.py changed since HEAD.
    (repo / "touched.py").write_text(BAD_MODULE)
    result = _run("--changed", "HEAD", ".", cwd=str(repo))
    assert result.returncode == 1, result.stdout + result.stderr
    assert "touched.py" in result.stdout
    assert "stale.py" not in result.stdout

    # Untracked files count as changed too.
    (repo / "fresh.py").write_text(BAD_MODULE)
    result = _run("--changed", "HEAD", ".", cwd=str(repo))
    assert "fresh.py" in result.stdout

    # With no churn the scan passes even though stale.py has findings.
    _git(repo, "add", ".")
    _git(repo, "commit", "-qm", "churn")
    result = _run("--changed", "HEAD", ".", cwd=str(repo))
    assert result.returncode == 0, result.stdout + result.stderr
