"""Schema tests for the JSON and SARIF renderers."""

from __future__ import annotations

import json

from repro.lint.baseline import SourceCache
from repro.lint.engine import BARE_PRAGMA, Finding, all_rules
from repro.lint.output import render_json, render_sarif


def _findings():
    return [
        Finding(rule="ND01", path="pkg/a.py", line=3, col=9,
                message="unseeded call"),
        Finding(rule="TD01", path="pkg/b.py", line=7, col=1,
                message="cross-domain comparison"),
        Finding(rule=BARE_PRAGMA, path="pkg/a.py", line=5, col=1,
                message="pragma carries no justification"),
    ]


def _cache():
    return SourceCache({
        "pkg/a.py": "x = 1\ny = 2\nz = bad()\nw = 4\n# simlint\n",
        "pkg/b.py": "\n\n\n\n\n\nif a < b:\n    pass\n",
    })


def test_json_payload_shape():
    payload = json.loads(render_json(_findings(), _cache()))
    assert payload["version"] == 1
    assert payload["tool"] == "repro.lint"
    assert payload["counts"] == {"E003": 1, "ND01": 1, "TD01": 1}
    entries = payload["findings"]
    assert len(entries) == 3
    first = entries[0]
    assert first["rule"] == "ND01"
    assert first["path"] == "pkg/a.py"
    assert (first["line"], first["col"]) == (3, 9)
    assert first["level"] == "warning"
    assert len(first["fingerprint"]) == 16
    # Engine diagnostics render as errors, real rules as warnings.
    assert entries[2]["level"] == "error"


def test_sarif_payload_shape():
    payload = json.loads(render_sarif(_findings(), _cache()))
    assert payload["version"] == "2.1.0"
    assert "sarif-schema-2.1.0" in payload["$schema"]
    run = payload["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro.lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    # Every shipped rule is described, plus the diagnostic that occurs.
    for rule in all_rules():
        assert rule.rule_id in rule_ids
    assert BARE_PRAGMA in rule_ids
    results = run["results"]
    assert len(results) == 3
    result = results[0]
    assert result["ruleId"] == "ND01"
    assert result["level"] == "warning"
    region = result["locations"][0]["physicalLocation"]["region"]
    assert region == {"startLine": 3, "startColumn": 9}
    uri = result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
    assert uri == "pkg/a.py"
    assert "reproLint/v1" in result["partialFingerprints"]


def test_sarif_rule_descriptors_carry_titles():
    payload = json.loads(render_sarif([], SourceCache({})))
    driver = payload["runs"][0]["tool"]["driver"]
    by_id = {rule["id"]: rule for rule in driver["rules"]}
    assert by_id["TD01"]["shortDescription"]["text"] \
        == "cross-domain time comparison"
    assert by_id["TD01"]["defaultConfiguration"]["level"] == "warning"
    assert "fullDescription" in by_id["TD01"]


def test_empty_scan_renders_valid_documents():
    assert json.loads(render_json([], SourceCache({})))["findings"] == []
    sarif = json.loads(render_sarif([], SourceCache({})))
    assert sarif["runs"][0]["results"] == []
