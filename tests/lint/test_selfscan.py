"""The self-scan gate: the repo's own source must lint clean.

Shells out to ``python -m repro.lint`` exactly as CI does, so the CLI
surface (argument parsing, exit codes, default target) is covered too.
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SRC = os.path.join(REPO_ROOT, "src")


def _run(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT)


def test_self_scan_is_clean():
    result = _run(os.path.join(SRC, "repro"))
    assert result.returncode == 0, result.stdout + result.stderr


def test_list_rules_names_every_shipped_rule():
    result = _run("--list-rules")
    assert result.returncode == 0
    for rule_id in ("ND01", "ND02", "ND03", "ND04", "ND05",
                    "RP01", "RP02",
                    "SD01", "SD02", "SD03", "SD04",
                    "TD01", "TD02", "TD03"):
        assert rule_id in result.stdout


def test_new_families_scan_src_clean():
    result = _run("--select", "TD01,TD02,TD03,RP01,RP02",
                  os.path.join(SRC, "repro"))
    assert result.returncode == 0, result.stdout + result.stderr


def test_findings_set_a_nonzero_exit(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("import random\nvalue = random.random()\n")
    result = _run(str(bad))
    assert result.returncode == 1
    assert "ND01" in result.stdout

    result = _run(str(tmp_path / "missing.py"))
    assert result.returncode == 2
