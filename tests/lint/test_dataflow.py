"""Unit tests for the interprocedural time-domain taint analysis.

Exercises the propagation machinery directly (summaries, attribute
domains, loop re-passes, branch merges) and end-to-end through
``lint_sources`` for cross-module flows.
"""

from __future__ import annotations

from repro.lint import engine
from repro.lint.dataflow import GLOBAL, LOCAL
from repro.lint.engine import ProjectContext, lint_sources


def _project(files):
    contexts = []
    for path, source in files.items():
        ctx, error = engine._build_context(source, path)
        assert error is None, error
        contexts.append(ctx)
    return ProjectContext(contexts)


def _summary(project, name):
    index = project.index
    matches = [f for f in index.functions if f.name == name]
    assert len(matches) == 1
    return project.timeflow.summaries[matches[0]]


def test_return_domain_propagates_through_helper():
    project = _project({"mod.py": (
        "def read_clock(kernel):\n"
        "    return kernel.now\n"
        "def compare(simulator, kernel):\n"
        "    return simulator.now < read_clock(kernel)\n"
    )})
    assert _summary(project, "read_clock").return_domain == GLOBAL
    events = project.timeflow.events
    assert [(e.kind, e.line) for e in events] == [("compare", 4)]
    assert {events[0].left, events[0].right} == {LOCAL, GLOBAL}


def test_parameter_expectation_recorded_from_callee_comparison():
    project = _project({"mod.py": (
        "def overdue(stamp, kernel):\n"
        "    return stamp >= kernel.now\n"
    )})
    summary = _summary(project, "overdue")
    assert summary.expectations == {0: (GLOBAL, "compare")}


def test_cross_module_return_domain_flows_to_caller():
    findings = lint_sources([
        ("clocks/reader.py",
         "def global_stamp(kernel):\n"
         "    return kernel.now\n"),
        ("app/main.py",
         "from clocks.reader import global_stamp\n"
         "def lag(simulator, kernel):\n"
         "    return simulator.now - global_stamp(kernel)\n"),
    ], select=["TD01", "TD02", "TD03"])
    assert [(f.rule, f.path, f.line) for f in findings] == [
        ("TD02", "app/main.py", 3)]


def test_self_attribute_domains_flow_between_methods():
    findings = lint_sources([("mod.py", (
        "class Tracker:\n"
        "    def stamp(self):\n"
        "        self._mark = self.simulator.now\n"
        "    def overdue(self, kernel):\n"
        "        return self._mark < kernel.now\n"
    ))], select=["TD01"])
    assert [(f.rule, f.line) for f in findings] == [("TD01", 5)]


def test_conflicting_attribute_assignments_poison_the_domain():
    # The attribute is written in both domains; the analysis must not
    # pick one arbitrarily, so the later comparison stays unflagged.
    findings = lint_sources([("mod.py", (
        "class Tracker:\n"
        "    def a(self):\n"
        "        self._mark = self.simulator.now\n"
        "    def b(self, kernel):\n"
        "        self._mark = kernel.now\n"
        "    def check(self, kernel):\n"
        "        return self._mark < kernel.now\n"
    ))], select=["TD01", "TD02", "TD03"])
    assert findings == []


def test_branch_merge_keeps_agreeing_domain():
    findings = lint_sources([("mod.py", (
        "def pick(flag, simulator, kernel):\n"
        "    if flag:\n"
        "        t = simulator.now\n"
        "    else:\n"
        "        t = simulator.peek_time()\n"
        "    return t < kernel.now\n"
    ))], select=["TD01"])
    assert [(f.rule, f.line) for f in findings] == [("TD01", 6)]


def test_loop_second_pass_sees_back_edge_assignment():
    findings = lint_sources([("mod.py", (
        "def poll(simulator, kernel):\n"
        "    stamp = 0.0\n"
        "    while True:\n"
        "        late = stamp < kernel.now\n"
        "        stamp = simulator.now\n"
    ))], select=["TD01"])
    assert [(f.rule, f.line) for f in findings] == [("TD01", 4)]


def test_offset_translation_is_sanctioned():
    findings = lint_sources([("mod.py", (
        "def translate(simulator, kernel, offset):\n"
        "    return (simulator.now + offset) < kernel.now\n"
    ))], select=["TD01", "TD02"])
    assert findings == []


def test_simulator_layer_is_out_of_scope():
    findings = lint_sources([("net/pump.py", (
        "def drain(simulator, kernel):\n"
        "    return simulator.now < kernel.now\n"
    ))], select=["TD01", "TD02", "TD03"])
    assert findings == []


def test_wrong_domain_schedule_flagged_at_injecting_call_site():
    findings = lint_sources([
        ("sched/helper.py",
         "def arm(kernel, at, callback):\n"
         "    kernel.schedule_at(at, callback)\n"),
        ("app/main.py",
         "from sched.helper import arm\n"
         "def rearm(simulator, kernel, callback):\n"
         "    arm(kernel, simulator.now, callback)\n"),
    ], select=["TD03"])
    assert [(f.rule, f.path, f.line) for f in findings] == [
        ("TD03", "app/main.py", 3)]
    assert "arm()" in findings[0].message
