"""Drills for the runtime kernel sanitizer.

Each invariant gets a drill that breaks it on purpose -- rewinding a
clock, scheduling into a source's local past, mutating foreground state
from a probe, leaking a watched pending map -- and the sanitizer must
catch every one.  The flip side is noninterference: a sanitized
fixed-seed cluster run must produce a byte-identical kernel fingerprint
to the unsanitized run.
"""

from __future__ import annotations

import pytest

from repro.core.config import LDSConfig
from repro.cluster.replicas import ReplicationConfig
from repro.net.simulator import Simulator
from repro.sim import ClusterSimulation, quorum_reads_under_lag
from repro.sim.kernel import GlobalScheduler
from repro.sim.sanitizer import (
    CLOCK_REGRESSION,
    PAST_SCHEDULE,
    PENDING_LEAK,
    PROBE_MUTATION,
    SanitizerError,
)

CONFIG = LDSConfig(n1=3, n2=4, f1=1, f2=1)


def _sanitized_kernel(strict: bool = True):
    kernel = GlobalScheduler()
    sanitizer = kernel.enable_sanitizer(strict=strict)
    return kernel, sanitizer


class TestClockRegressionDrill:
    def test_callback_rewinding_the_local_clock_is_caught(self):
        kernel, _ = _sanitized_kernel()
        simulator = Simulator()
        kernel.register_simulator(simulator, name="drill")
        simulator.schedule(5.0, lambda: None)

        def rewind():
            simulator._now = 2.0

        simulator.schedule(6.0, rewind)
        with pytest.raises(SanitizerError) as err:
            kernel.run_until_idle()
        assert err.value.violation.kind == CLOCK_REGRESSION
        assert err.value.violation.source == "drill"

    def test_recording_mode_accumulates_instead_of_raising(self):
        kernel, sanitizer = _sanitized_kernel(strict=False)
        simulator = Simulator()
        kernel.register_simulator(simulator, name="drill")
        simulator.schedule(5.0, lambda: None)

        def rewind():
            simulator._now = 2.0

        simulator.schedule(6.0, rewind)
        kernel.run_until_idle()
        kinds = [v.kind for v in sanitizer.violations]
        assert CLOCK_REGRESSION in kinds
        assert not sanitizer.ok

    def test_clean_run_checks_every_event_and_stays_ok(self):
        kernel, sanitizer = _sanitized_kernel()
        simulator = Simulator()
        kernel.register_simulator(simulator, name="fine")
        for delay in (1.0, 2.0, 3.0):
            simulator.schedule(delay, lambda: None)
        kernel.run_until_idle()
        assert sanitizer.ok
        assert sanitizer.events_checked == 3


class TestPastScheduleDrill:
    def test_scheduling_into_the_local_past_raises_structured_error(self):
        kernel, _ = _sanitized_kernel()
        simulator = Simulator()
        kernel.register_simulator(simulator, name="lagging")

        def schedule_backwards():
            simulator.schedule_at(1.0, lambda: None)

        simulator.schedule(5.0, schedule_backwards)
        with pytest.raises(SanitizerError) as err:
            kernel.run_until_idle()
        assert err.value.violation.kind == PAST_SCHEDULE
        assert err.value.violation.source == "lagging"

    def test_recording_mode_still_records_before_the_value_error(self):
        kernel, sanitizer = _sanitized_kernel(strict=False)
        simulator = Simulator()
        kernel.register_simulator(simulator, name="lagging")

        def schedule_backwards():
            simulator.schedule_at(1.0, lambda: None)

        simulator.schedule(5.0, schedule_backwards)
        # The simulator's own past-check still raises; the sanitizer's
        # guard has already attached source context to the record.
        with pytest.raises(ValueError):
            kernel.run_until_idle()
        assert [v.kind for v in sanitizer.violations] == [PAST_SCHEDULE]

    def test_scheduling_at_exactly_now_is_legal(self):
        kernel, sanitizer = _sanitized_kernel()
        simulator = Simulator()
        kernel.register_simulator(simulator, name="edge")
        ran = []

        def schedule_now():
            simulator.schedule_at(simulator.now, lambda: ran.append(True))

        simulator.schedule(5.0, schedule_now)
        kernel.run_until_idle()
        assert ran == [True]
        assert sanitizer.ok


class TestProbeMutationDrill:
    def test_probe_scheduling_foreground_work_is_caught(self):
        kernel, _ = _sanitized_kernel()
        simulator = Simulator()
        kernel.register_simulator(simulator, name="victim")
        simulator.schedule(10.0, lambda: None)

        def impure_probe():
            kernel.schedule_at(7.0, lambda: None)

        kernel.schedule_probe(5.0, impure_probe)
        with pytest.raises(SanitizerError) as err:
            kernel.run_until_idle()
        assert err.value.violation.kind == PROBE_MUTATION
        assert err.value.violation.source == "kernel"
        assert "pending_events" in err.value.violation.detail

    def test_probe_pumping_another_source_is_caught(self):
        kernel, _ = _sanitized_kernel()
        simulator = Simulator()
        kernel.register_simulator(simulator, name="victim")
        simulator.schedule(10.0, lambda: None)

        def impure_probe():
            simulator.step()

        kernel.schedule_probe(5.0, impure_probe)
        with pytest.raises(SanitizerError) as err:
            kernel.run_until_idle()
        assert err.value.violation.kind == PROBE_MUTATION
        assert err.value.violation.source == "victim"

    def test_pure_probe_passes_the_write_barrier(self):
        kernel, sanitizer = _sanitized_kernel()
        simulator = Simulator()
        kernel.register_simulator(simulator, name="watched")
        simulator.schedule(10.0, lambda: None)
        seen = []

        def pure_probe():
            seen.append((kernel.now, kernel.pending_work()))

        kernel.schedule_probe(5.0, pure_probe)
        kernel.run_until_idle()
        assert seen == [(0.0, True)]
        assert sanitizer.ok
        assert sanitizer.probes_checked == 1


class TestPendingLeakDrill:
    def test_watched_map_left_nonempty_at_idle_is_caught(self):
        kernel, sanitizer = _sanitized_kernel()
        simulator = Simulator()
        kernel.register_simulator(simulator, name="leaky")
        pending = {}
        sanitizer.watch_map("drill.pending", pending)

        def start_and_forget():
            pending["op-1"] = ("key", 5.0)

        simulator.schedule(5.0, start_and_forget)
        with pytest.raises(SanitizerError) as err:
            kernel.run_until_idle()
        assert err.value.violation.kind == PENDING_LEAK
        assert err.value.violation.source == "drill.pending"
        assert "op-1" in err.value.violation.detail

    def test_drained_map_is_clean(self):
        kernel, sanitizer = _sanitized_kernel()
        simulator = Simulator()
        kernel.register_simulator(simulator, name="tidy")
        pending = {}
        sanitizer.watch_map("drill.pending", pending)
        simulator.schedule(5.0, lambda: pending.__setitem__("op-1", 1))
        simulator.schedule(6.0, lambda: pending.pop("op-1"))
        kernel.run_until_idle()
        assert sanitizer.ok


class TestClampDiagnostics:
    def test_probe_rearm_clamp_is_recorded_not_violated(self):
        # Probes never advance the global clock, so the telemetry
        # source's local clock runs ahead of it; a later probe scheduled
        # from global time would land in the telemetry local past and is
        # clamped forward -- by design, and now observable.
        kernel, sanitizer = _sanitized_kernel()
        kernel.schedule_probe(5.0, lambda: None)
        kernel.run_until_idle()
        assert kernel.now == 0.0
        kernel.schedule_probe(3.0, lambda: None)
        assert [c.kind for c in sanitizer.clamps] == ["probe"]
        clamp = sanitizer.clamps[0]
        assert clamp.requested == 3.0
        assert clamp.effective == 5.0
        assert sanitizer.ok

    def test_shard_clamp_is_recorded_not_violated(self):
        simulation = ClusterSimulation(CONFIG, ["pool-0", "pool-1"],
                                       seed=11, sanitize=True)
        simulation.invoke_write("k", b"v")
        simulation.run_until_idle()
        shard = simulation.router.shard("k")
        ran = []
        simulation.router.schedule_on_shard(shard, 0.0,
                                            lambda: ran.append(True))
        simulation.run_until_idle()
        sanitizer = simulation.kernel.sanitizer
        assert ran == [True]
        assert [c.kind for c in sanitizer.clamps] == ["shard"]
        assert sanitizer.clamps[0].requested == 0.0
        assert sanitizer.clamps[0].effective > 0.0
        assert sanitizer.ok


class TestHarnessIntegration:
    def _run(self, sanitize: bool) -> ClusterSimulation:
        simulation = ClusterSimulation(
            CONFIG, ["pool-0", "pool-1", "pool-2"], seed=7,
            writers_per_shard=2, readers_per_shard=2,
            replication=ReplicationConfig(r=3, replication_lag=400.0,
                                          read_quorum=2),
            read_policy="quorum", sanitize=sanitize)
        keys = [f"obj-{i}" for i in range(4)]
        simulation.ensure_shards(keys)
        simulation.apply(quorum_reads_under_lag(keys, seed=7))
        return simulation

    def test_sanitized_run_is_byte_identical_and_clean(self):
        bare = self._run(sanitize=False)
        sanitized = self._run(sanitize=True)
        assert bare.kernel.sanitizer is None
        sanitizer = sanitized.kernel.sanitizer
        assert sanitized.kernel.fingerprint == bare.kernel.fingerprint
        assert sanitizer.ok
        assert sanitizer.events_checked == bare.kernel.stats.events_total

    def test_replica_pending_maps_are_watched_end_to_end(self):
        simulation = self._run(sanitize=True)
        # Plant a leak in the replica layer's watched pending map: the
        # next drain to idle must flag it through the harness wiring.
        simulation.replicas._pending_invocations["ghost"] = ("k", 1.0)
        with pytest.raises(SanitizerError) as err:
            simulation.run_until_idle()
        assert err.value.violation.kind == PENDING_LEAK
        assert err.value.violation.source == "replicas.pending_invocations"
