"""The replica scenario family: failover under load, degraded reads.

These are the acceptance tests of the replica-group subsystem: r=3 on the
global clock, follower reads carrying a real share of the traffic, a pool
kill driving deterministic promotion, and the combined atomicity + session
audit staying clean under fixed seeds -- with the injection drill proving
a stale follower read *would* be caught if the guard ever let one through.
"""

from __future__ import annotations

import pytest

from repro.cluster.replicas import ReplicationConfig
from repro.consistency.injection import (
    inject_stale_follower_read,
    is_follower_read,
)
from repro.consistency.sessions import check_sessions
from repro.core.config import LDSConfig
from repro.sim import (
    ClusterSimulation,
    degraded_reads_during_catch_up,
    replica_failover_under_load,
)

KEYS = [f"obj-{i}" for i in range(16)]
POOLS = [f"pool-{i}" for i in range(4)]


@pytest.fixture
def config() -> LDSConfig:
    return LDSConfig(n1=3, n2=4, f1=1, f2=1)


def run_failover(config, policy: str, seed: int = 7) -> ClusterSimulation:
    simulation = ClusterSimulation(
        config, POOLS, seed=seed, record_trace=True,
        replication=ReplicationConfig(r=3, replication_lag=25.0,
                                      failover_detection_delay=12.0),
        read_policy=policy,
    )
    simulation.ensure_shards(KEYS)
    simulation.apply(replica_failover_under_load(KEYS, "pool-0", seed=seed))
    return simulation


class TestReplicaFailoverUnderLoad:
    @pytest.mark.parametrize("policy", ["round-robin", "nearest"])
    def test_followers_carry_at_least_30_percent_and_audit_clean(self, config,
                                                                 policy):
        simulation = run_failover(config, policy)
        distribution = simulation.read_distribution()
        assert distribution.follower_fraction >= 0.30, distribution.describe()
        # The kill triggered deterministic promotion for every group whose
        # primary lived on the victim pool.
        stats = simulation.replicas.stats
        assert stats.failovers_started >= 1
        assert stats.promotions == stats.failovers_started
        report = simulation.audit()
        assert report.ok, report.describe()

    def test_promotion_is_visible_on_the_timeline(self, config):
        simulation = run_failover(config, "round-robin")
        timeline = simulation.timeline()
        kinds = [kind for _, kind, _ in timeline]
        assert "kill-pool" in kinds
        assert "primary-down" in kinds
        assert "promote" in kinds
        # Order: the kill precedes every promotion.
        kill_at = next(t for t, kind, _ in timeline if kind == "kill-pool")
        for t, kind, _ in timeline:
            if kind == "promote":
                assert t >= kill_at

    def test_same_seed_replays_identically(self, config):
        first = run_failover(config, "round-robin")
        second = run_failover(config, "round-robin")
        assert first.kernel.fingerprint == second.kernel.fingerprint
        assert first.kernel.trace == second.kernel.trace
        assert (first.read_distribution().counts
                == second.read_distribution().counts)
        assert [e for e in first.replicas.failover_log] \
            == [e for e in second.replicas.failover_log]

    def test_stale_follower_injection_is_detected(self, config):
        simulation = run_failover(config, "round-robin")
        history = simulation.history(global_clock=True)
        assert any(is_follower_read(op) for op in history)
        injection = inject_stale_follower_read(history)
        report = check_sessions(injection.history)
        assert not report.ok
        blamed = {op_id for violation in report.violations
                  for op_id in violation.operations}
        assert injection.mutated[0] in blamed


class TestDegradedReadsDuringCatchUp:
    def test_follower_reads_flow_through_the_failover_window(self, config):
        simulation = ClusterSimulation(
            config, POOLS, seed=3,
            writers_per_shard=2, readers_per_shard=2,
            replication=ReplicationConfig(r=3, replication_lag=30.0,
                                          failover_detection_delay=20.0,
                                          catch_up_per_record=2.0),
            read_policy="least-loaded",
        )
        simulation.ensure_shards(KEYS)
        simulation.apply(degraded_reads_during_catch_up(KEYS, "pool-1",
                                                        seed=3))
        assert simulation.replicas.stats.promotions >= 1
        # Reads served by follower stores *inside* the failover windows.
        windows = []
        down_at = {}
        for time, kind, detail in simulation.replicas.failover_log:
            key = detail.split(":")[0]
            if kind == "primary-down":
                down_at[key] = time
            elif kind == "promote" and key in down_at:
                windows.append((down_at.pop(key), time))
        assert windows
        degraded = [
            op for op in simulation.history(global_clock=True)
            if is_follower_read(op)
            and any(start <= op.invoked_at <= end for start, end in windows)
        ]
        assert degraded, "the read burst must be served degraded by followers"
        report = simulation.audit()
        assert report.ok, report.describe()
