"""ClusterSimulation harness: kernel-mode driving, arrivals, compatibility."""

from __future__ import annotations

import pytest

from repro.core.config import LDSConfig
from repro.sim import ClusterSimulation, GlobalScheduler
from repro.cluster.deployment import ShardedCluster
from repro.workloads.generator import ScheduledOperation, Workload, WorkloadGenerator
from repro.workloads.runner import KeyedWorkloadRunner

KEYS = [f"obj-{i}" for i in range(10)]
POOLS = ["pool-0", "pool-1"]


@pytest.fixture
def config() -> LDSConfig:
    return LDSConfig(n1=3, n2=4, f1=1, f2=1)


class TestDriving:
    def test_synchronous_reads_and_writes_on_the_global_clock(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=1)
        router = simulation.router
        for i, key in enumerate(KEYS):
            router.write(key, f"value-{i}".encode())
        for i, key in enumerate(KEYS):
            assert router.read(key).value == f"value-{i}".encode()
        assert simulation.kernel.events_processed > 0
        assert simulation.check_atomicity() is None

    def test_arrivals_create_shards_at_their_nominal_global_time(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=1)
        generator = WorkloadGenerator(seed=1, client_spacing=60.0)
        workload = generator.keyed_random(KEYS, 40, 0.5, 300.0)
        simulation.add_workload(workload)
        simulation.run_until_idle()
        assert simulation.arrivals == 40
        history = simulation.history(global_clock=True)
        nominal = {op.at for op in workload.operations}
        # Global invocation times equal the nominal workload times (each
        # arrival is injected exactly when the global clock reaches it).
        assert {op.invoked_at for op in history} == nominal
        assert simulation.check_atomicity() is None

    def test_keyed_runner_drives_the_kernel_transparently(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=2)
        generator = WorkloadGenerator(seed=2, client_spacing=60.0)
        workload = generator.zipf_keyed(KEYS, 50, 0.4, 300.0)
        report = KeyedWorkloadRunner(simulation).run(workload)
        assert report.is_atomic
        assert report.incomplete_operations == 0
        assert len(report.write_costs) == workload.write_count
        assert len(report.read_costs) == workload.read_count
        assert all(cost > 0 for cost in report.write_costs.values())
        # The workload really ran through the merged pump, via the
        # harness's own arrival machinery.
        assert simulation.interleaving.context_switches > 0
        assert simulation.arrivals == len(workload)

    def test_runner_reuse_after_clock_advanced_shifts_uniformly(self, config):
        """A second workload whose nominal window already passed must be
        shifted forward as a block (preserving per-client spacing), not
        collapsed onto the current instant."""
        simulation = ClusterSimulation(config, POOLS, seed=8)
        generator = WorkloadGenerator(seed=8, client_spacing=60.0)
        first = KeyedWorkloadRunner(simulation).run(
            generator.keyed_random(KEYS, 30, 0.5, 300.0))
        assert first.is_atomic
        advanced = simulation.now
        second = KeyedWorkloadRunner(simulation).run(
            generator.keyed_random(KEYS, 30, 0.5, 300.0))
        assert second.is_atomic
        assert second.incomplete_operations == 0
        late = [op for op in simulation.history(global_clock=True)
                if op.invoked_at >= advanced]
        # the second workload kept its spread instead of firing all at once
        assert len({op.invoked_at for op in late}) > 10

    def test_add_workload_in_the_past_shifts_uniformly(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=8)
        simulation.kernel.schedule_at(500.0, lambda: None)
        simulation.run_until_idle()
        generator = WorkloadGenerator(seed=8, client_spacing=60.0)
        workload = generator.keyed_random(KEYS, 20, 0.5, 200.0)
        simulation.add_workload(workload, start=0.0)
        simulation.run_until_idle()
        assert simulation.check_atomicity() is None
        invoked = sorted(op.invoked_at
                         for op in simulation.history(global_clock=True))
        # the earliest operation lands exactly at the clock, the rest keep
        # their relative spacing behind it
        assert invoked[0] == pytest.approx(500.0)
        assert len(set(invoked)) > 10

    def test_workload_with_too_many_clients_rejected_up_front(self, config):
        from repro.sim import flash_crowd
        simulation = ClusterSimulation(config, POOLS, seed=5)  # 1 client/shard
        scenario = flash_crowd(KEYS, seed=5, operations=20, crowd_operations=20,
                               shift_at=100.0, duration=200.0)
        with pytest.raises(ValueError, match="writers_per_shard"):
            simulation.apply(scenario)
        # nothing ran: the rejection happened at schedule time
        assert simulation.arrivals == 0

    def test_runner_rejects_oversized_client_indices_on_every_surface(self, config):
        from dataclasses import replace
        generator = WorkloadGenerator(seed=5, client_spacing=60.0)
        workload = generator.keyed_random(KEYS, 10, 0.5, 100.0)
        workload.operations = [replace(op, client_index=op.client_index + 1)
                               for op in workload.operations]
        for system in (ClusterSimulation(config, POOLS, seed=5),
                       ShardedCluster(config, POOLS, seed=5)):
            if system.kernel is None:
                system.attach_kernel(GlobalScheduler())
            with pytest.raises(ValueError, match="per_shard"):
                KeyedWorkloadRunner(system).run(workload)

    def test_past_due_shift_survives_float_rounding(self, config):
        """(now - a) + a can round below now; the arrival must be clamped,
        not rejected as 'in the global past'."""
        simulation = ClusterSimulation(config, POOLS, seed=1)
        # A (clock, operation.at) pair where the round trip loses an ulp.
        now, op_at = 1261.714742492535, 129.45837514648167
        assert (now - op_at) + op_at < now  # the pair really misbehaves
        simulation.kernel.schedule_at(now, lambda: None)
        simulation.run_until_idle()
        workload = Workload().add(ScheduledOperation(
            kind="write", at=op_at, value=b"x", key="obj-0"))
        simulation.add_workload(workload)  # must not raise
        simulation.run_until_idle()
        assert simulation.arrivals == 1
        assert simulation.check_atomicity() is None

    def test_drain_time_inflation_does_not_delay_the_new_epoch(self, config):
        """A migration drain executes future callbacks (e.g. rate-limited
        repairs) inline; the new epoch must still start at the migration
        instant, not at the fast-forwarded shard clock."""
        simulation = ClusterSimulation(config, POOLS, seed=21,
                                       repair_min_interval=50.0,
                                       repair_detection_delay=1.0)
        keys = [f"d-{i}" for i in range(12)]
        simulation.ensure_shards(keys)
        pool0_keys = [s.key for s in simulation.router.shards_on_pool("pool-0")]
        assert pool0_keys
        simulation.kernel.schedule_at(
            50.0, lambda: simulation.cluster.fail_node("pool-0/l2-0", time=50.0))
        # pool-0 leaves at t=120 while its repairs are slotted far beyond.
        leave_at = 120.0
        simulation.kernel.schedule_at(
            leave_at, lambda: simulation.cluster.remove_pool("pool-0",
                                                             time=leave_at))
        simulation.run_until_idle()
        moved = [(t, key) for t, key, source, _ in
                 simulation.router.migration_log if source == "pool-0"]
        assert moved
        # every migration is logged at (or very near) the leave instant,
        # not after the drained repair slots at t=171/221/...
        assert all(leave_at <= t < leave_at + 40.0 for t, _ in moved)
        # and new-epoch traffic is not silently postponed either
        key = moved[0][1]
        write_at = simulation.now
        simulation.router.write(key, b"after-migration")
        late = [op for op in simulation.history(global_clock=True)
                if op.value == b"after-migration"]
        assert late and late[0].invoked_at <= write_at + 1e-6
        assert simulation.check_atomicity() is None

    def test_migrating_a_lagging_shard_stays_on_the_global_timeline(self, config):
        """A shard idle since early in the run migrates when a pool joins
        much later; the new epoch must start at the join time, not back at
        the shard's stale clock."""
        simulation = ClusterSimulation(config, POOLS, seed=13)
        keys = [f"lag-{i}" for i in range(12)]
        for key in keys:
            simulation.router.write(key, b"early")  # shards idle from ~t=30
        drained = simulation.now
        join_at = drained + 500.0
        simulation.kernel.schedule_at(
            join_at, lambda: simulation.cluster.add_pool("pool-late",
                                                         time=join_at))
        simulation.run_until_idle()
        moved = [entry for entry in simulation.router.migration_log]
        assert moved, "expected at least one shard to move to the new pool"
        assert all(time >= join_at for time, *_ in moved)
        # a write after the migration lands after the join on the global clock
        key = moved[0][1]
        simulation.router.write(key, b"late")
        late_ops = [op for op in simulation.history(global_clock=True)
                    if op.value == b"late"]
        assert late_ops and all(op.invoked_at >= join_at for op in late_ops)
        assert simulation.check_atomicity() is None

    def test_run_until_bounded_global_time(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=3)
        generator = WorkloadGenerator(seed=3, client_spacing=60.0)
        simulation.add_workload(generator.keyed_random(KEYS, 30, 0.5, 400.0))
        simulation.run(until=200.0)
        assert simulation.now == 200.0
        mid_flight = [op for op in simulation.history() if not op.is_complete]
        simulation.run_until_idle()
        assert all(op.is_complete for op in simulation.history())
        # the bounded run stopped somewhere inside the workload
        assert simulation.arrivals == 30
        assert mid_flight or True  # presence depends on timing; no flake


class TestCompatibilityShim:
    """The legacy per-shard idle loop must behave exactly as before."""

    def test_cluster_without_kernel_uses_legacy_loop(self, config):
        cluster = ShardedCluster(config, POOLS, seed=5)
        assert cluster.kernel is None
        generator = WorkloadGenerator(seed=5, client_spacing=60.0)
        report = KeyedWorkloadRunner(cluster.router).run(
            generator.zipf_keyed(KEYS, 40, 0.4, 300.0))
        assert report.is_atomic
        # Legacy mode batches per shard: far fewer flushes than operations.
        assert cluster.router_stats.batches_flushed < 40

    def test_kernel_mode_matches_legacy_results(self, config):
        """Same seed, same workload: both backends return the same values
        and stay atomic (latencies differ -- the kernel interleaves)."""
        generator_args = dict(seed=7, client_spacing=60.0)

        def values_read(system, runner_target):
            generator = WorkloadGenerator(**generator_args)
            workload = generator.keyed_random(KEYS, 40, 0.5, 300.0)
            report = KeyedWorkloadRunner(runner_target).run(workload)
            assert report.is_atomic
            return sorted(
                (op.op_id, bytes(op.value))
                for op in report.history.complete()
                if op.kind == "read" and op.value is not None
            )

        legacy = ShardedCluster(config, POOLS, seed=7)
        kernel_sim = ClusterSimulation(config, POOLS, seed=7)
        assert values_read(legacy, legacy.router) == \
            values_read(kernel_sim, kernel_sim)

    def test_global_clock_history_requires_a_kernel(self, config):
        cluster = ShardedCluster(config, POOLS, seed=2)
        cluster.write("obj-a", b"x")
        with pytest.raises(RuntimeError, match="attached kernel"):
            cluster.history(global_clock=True)
        cluster.history()  # local-clock merge stays available

    def test_attach_kernel_twice_rejected(self, config):
        cluster = ShardedCluster(config, POOLS, seed=1)
        cluster.attach_kernel(GlobalScheduler())
        with pytest.raises(RuntimeError):
            cluster.attach_kernel(GlobalScheduler())

    def test_attach_after_migrations_keeps_epoch_order_on_global_clock(self, config):
        """Epochs retired before the attach must map *before* their
        successors on the global timeline (only their real-time order is
        recoverable; the drain barrier guaranteed exactly that)."""
        cluster = ShardedCluster(config, POOLS, seed=6)
        keys = [f"mv-{i}" for i in range(10)]
        for key in keys:
            cluster.write(key, b"epoch0")
        cluster.add_pool("pool-extra")
        assert cluster.router.stats.migrations >= 1
        moved = {key for _, key, _, _ in cluster.router.migration_log}
        for key in moved:
            cluster.write(key, b"epoch1")
        cluster.attach_kernel(GlobalScheduler())
        history = cluster.history(global_clock=True)
        for key in moved:
            epoch0 = [op for op in history if op.op_id.startswith(f"{key}/")]
            epoch1 = [op for op in history if op.op_id.startswith(f"{key}@e1/")]
            assert epoch0 and epoch1
            latest_before = max(op.responded_at or op.invoked_at
                                for op in epoch0)
            earliest_after = min(op.invoked_at for op in epoch1)
            assert latest_before <= earliest_after
        # and the attached cluster still works end to end
        for key in moved:
            assert cluster.read(key).value == b"epoch1"
        assert cluster.check_atomicity() is None

    def test_attach_kernel_adopts_existing_shards(self, config):
        cluster = ShardedCluster(config, POOLS, seed=1)
        cluster.write("obj-a", b"before")
        cluster.attach_kernel(GlobalScheduler())
        assert cluster.read("obj-a").value == b"before"
        cluster.write("obj-b", b"after")
        assert cluster.read("obj-b").value == b"after"
        assert cluster.check_atomicity() is None
        names = {source.name for source in cluster.kernel.sources()}
        assert "shard:obj-a" in names and "shard:obj-b" in names
