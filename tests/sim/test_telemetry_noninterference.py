"""Telemetry is pure observation: instrumented runs are byte-identical.

The governing invariant of ``repro.obs`` (and of the kernel's telemetry
probe source) is that turning every pillar on -- registry, sampler,
tracer, pump profile -- changes *nothing* about the simulated execution:
same kernel fingerprint, same merged timeline, same histories, same
audit verdict.  These tests pin that down on a fixed-seed
``quorum_reads_under_lag`` run, and additionally prove the probe events
never leak into the fingerprinted stats or the operation histories.
"""

from __future__ import annotations

import pytest

from repro.cluster.replicas import ReplicationConfig
from repro.core.config import LDSConfig
from repro.obs import Telemetry
from repro.sim import (
    TELEMETRY_SOURCE,
    ClusterSimulation,
    quorum_reads_under_lag,
)

KEYS = [f"obj-{i}" for i in range(16)]
POOLS = [f"pool-{i}" for i in range(4)]
SEED = 7


def _run(telemetry):
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, POOLS, seed=SEED,
        replication=ReplicationConfig(r=3, replication_lag=400.0,
                                      read_quorum=2,
                                      write_ingress="nearest"),
        read_policy="quorum",
        writers_per_shard=2, readers_per_shard=2,
        telemetry=telemetry,
    )
    simulation.ensure_shards(KEYS)
    simulation.apply(quorum_reads_under_lag(KEYS, seed=SEED))
    return simulation


def _op_key(op):
    return (op.op_id, op.client_id, op.kind, op.object_id, op.value,
            op.invoked_at, op.responded_at, op.tag, op.session)


@pytest.fixture(scope="module")
def runs():
    return _run(None), _run(Telemetry.full())


class TestNonInterference:
    def test_fingerprints_identical(self, runs):
        bare, full = runs
        assert full.kernel.fingerprint == bare.kernel.fingerprint
        assert full.kernel.events_processed == bare.kernel.events_processed

    def test_timelines_identical(self, runs):
        bare, full = runs
        assert full.timeline() == bare.timeline()

    def test_histories_identical(self, runs):
        bare, full = runs
        bare_ops = [_op_key(op) for op in bare.history()]
        full_ops = [_op_key(op) for op in full.history()]
        assert full_ops == bare_ops

    def test_audits_clean_and_identical(self, runs):
        bare, full = runs
        bare_audit, full_audit = bare.audit(), full.audit()
        assert bare_audit.ok and full_audit.ok
        assert full_audit.describe() == bare_audit.describe()

    def test_probe_source_never_fingerprinted(self, runs):
        _, full = runs
        # The sampler ran (it produced samples)...
        assert full.telemetry.sampler.samples
        # ...yet its probe queue is invisible to the fingerprinted stats.
        assert TELEMETRY_SOURCE not in full.kernel.stats.events_by_source

    def test_probes_never_in_histories(self, runs):
        _, full = runs
        for op in full.history():
            assert TELEMETRY_SOURCE not in op.op_id
            assert TELEMETRY_SOURCE != op.client_id


class TestTelemetryActuallyObserved:
    """Guard against the trivial way to pass the above: observing nothing."""

    def test_all_pillars_collected(self, runs):
        _, full = runs
        telemetry = full.telemetry
        assert telemetry.trace.events
        assert not telemetry.trace.open_handles()
        assert telemetry.sampler.samples
        assert telemetry.pump_profile.events > 0
        assert telemetry.registry.get("router_arrivals").value > 0

    def test_lag_series_rises_then_collapses(self, runs):
        _, full = runs
        lag = full.telemetry.sampler.series("replication_lag", "max")
        assert max(lag) > 0
        assert lag[-1] == 0

    def test_write_spans_carry_forward_and_apply_children(self, runs):
        _, full = runs
        trace = full.telemetry.trace
        roots = [e for e in trace.events
                 if e.get("ph") == "b" and e.get("cat") == "op"
                 and e["name"].startswith("write")]
        assert roots
        children = [e for e in trace.events
                    if e.get("args", {}).get("parent")]
        names = {e["name"].split(" ")[0] for e in children}
        assert "forward-hop" in names
        assert "replication-apply" in names

    def test_read_deferred_by_failover_gets_a_freeze_wait_span(self):
        telemetry = Telemetry.full()
        config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
        simulation = ClusterSimulation(
            config, POOLS, seed=3,
            replication=ReplicationConfig(r=3, replication_lag=25.0,
                                          failover_detection_delay=10.0),
            read_policy="primary",
            telemetry=telemetry,
        )
        simulation.ensure_shards(["k"])
        simulation.cluster.write("k", b"v1")
        simulation.run_until_idle()
        group = simulation.replicas.groups["k"]
        simulation.cluster.fail_pool(group.primary_pool,
                                     time=simulation.kernel.now)
        read = simulation.cluster.router.invoke_read("k", session="r")
        assert simulation.cluster.router.stats.failover_deferrals == 1
        simulation.run_until_idle()
        span, = telemetry.trace.spans("freeze-wait")
        assert span["args"]["parent"] == read
        assert span["args"]["promoted"] == group.primary_pool
        assert telemetry.trace.open_handles() == []
