"""Unit tests for the global simulation kernel (merged event pump)."""

from __future__ import annotations

import pytest

from repro.net.simulator import Simulator
from repro.sim.kernel import KERNEL_SOURCE, GlobalScheduler


def _recorder(kernel, log, name):
    def record():
        log.append((name, kernel.now))
    return record


class TestRegistration:
    def test_fresh_simulator_aligns_local_zero_with_global_now(self):
        kernel = GlobalScheduler()
        kernel.schedule_at(10.0, lambda: None)
        kernel.run_until_idle()
        source = kernel.register_simulator(Simulator(), name="late")
        assert source.offset == 10.0
        assert source.to_global(0.0) == 10.0
        assert source.to_local(12.0) == 2.0

    def test_already_run_simulator_aligns_current_times(self):
        kernel = GlobalScheduler()
        simulator = Simulator()
        simulator.schedule(7.0, lambda: None)
        simulator.run_until_idle()
        source = kernel.register_simulator(simulator, name="veteran")
        assert source.offset == -7.0
        assert source.global_now == 0.0

    def test_duplicate_names_rejected(self):
        kernel = GlobalScheduler()
        kernel.register_simulator(Simulator(), name="a")
        with pytest.raises(ValueError):
            kernel.register_simulator(Simulator(), name="a")

    def test_unregistered_source_keeps_its_offset_on_record(self):
        kernel = GlobalScheduler()
        kernel.schedule_at(5.0, lambda: None)
        kernel.run_until_idle()
        kernel.register_simulator(Simulator(), name="gone")
        kernel.unregister("gone")
        assert kernel.offset_of("gone") == 5.0
        with pytest.raises(KeyError):
            kernel.source("gone")


class TestMergedOrdering:
    def test_events_from_many_simulators_interleave_by_global_time(self):
        kernel = GlobalScheduler()
        log = []
        sim_a, sim_b = Simulator(), Simulator()
        kernel.register_simulator(sim_a, name="a")
        kernel.register_simulator(sim_b, name="b")
        sim_a.schedule(1.0, _recorder(kernel, log, "a1"))
        sim_a.schedule(5.0, _recorder(kernel, log, "a5"))
        sim_b.schedule(2.0, _recorder(kernel, log, "b2"))
        sim_b.schedule(4.0, _recorder(kernel, log, "b4"))
        kernel.run_until_idle()
        assert log == [("a1", 1.0), ("b2", 2.0), ("b4", 4.0), ("a5", 5.0)]
        assert kernel.stats.context_switches == 2  # a->b and b->a

    def test_offsets_shift_a_source_onto_the_global_timeline(self):
        kernel = GlobalScheduler()
        log = []
        early, late = Simulator(), Simulator()
        kernel.register_simulator(early, name="early")
        kernel.register_simulator(late, name="late", offset=10.0)
        early.schedule(11.0, _recorder(kernel, log, "early11"))
        late.schedule(0.5, _recorder(kernel, log, "late-local-0.5"))
        kernel.run_until_idle()
        assert log == [("late-local-0.5", 10.5), ("early11", 11.0)]

    def test_ties_break_by_registration_order(self):
        kernel = GlobalScheduler()
        log = []
        first, second = Simulator(), Simulator()
        kernel.register_simulator(first, name="first")
        kernel.register_simulator(second, name="second")
        second.schedule(3.0, _recorder(kernel, log, "second"))
        first.schedule(3.0, _recorder(kernel, log, "first"))
        kernel.run_until_idle()
        assert log == [("first", 3.0), ("second", 3.0)]

    def test_kernel_events_win_ties_against_shard_events(self):
        kernel = GlobalScheduler()
        log = []
        shard = Simulator()
        kernel.register_simulator(shard, name="shard")
        shard.schedule(2.0, _recorder(kernel, log, "shard"))
        kernel.schedule_at(2.0, _recorder(kernel, log, "kernel"))
        kernel.run_until_idle()
        assert log == [("kernel", 2.0), ("shard", 2.0)]

    def test_callbacks_may_schedule_across_sources(self):
        kernel = GlobalScheduler()
        log = []
        sim_a, sim_b = Simulator(), Simulator()
        kernel.register_simulator(sim_a, name="a")
        kernel.register_simulator(sim_b, name="b")
        # a's event plants a later event into b (like a repair scheduler
        # reacting to a failure by scheduling work on another shard).
        sim_a.schedule(1.0, lambda: sim_b.schedule_at(
            2.0, _recorder(kernel, log, "planted")))
        kernel.run_until_idle()
        assert log == [("planted", 2.0)]

    def test_clock_is_monotone_even_for_lagging_sources(self):
        kernel = GlobalScheduler()
        log = []
        kernel.schedule_at(10.0, lambda: None)
        kernel.run_until_idle()
        lagging = Simulator()
        kernel.register_simulator(lagging, name="lagging", offset=0.0)
        lagging.schedule(1.0, _recorder(kernel, log, "late-event"))
        kernel.run_until_idle()
        # The event's nominal global time (1.0) already passed; it runs
        # immediately without rewinding the global clock.
        assert log == [("late-event", 10.0)]
        assert kernel.now == 10.0


class TestRunControl:
    def test_run_until_global_time(self):
        kernel = GlobalScheduler()
        log = []
        shard = Simulator()
        kernel.register_simulator(shard, name="shard")
        shard.schedule(1.0, _recorder(kernel, log, "one"))
        shard.schedule(9.0, _recorder(kernel, log, "nine"))
        kernel.run(until=5.0)
        assert log == [("one", 1.0)]
        assert kernel.now == 5.0
        kernel.run_until_idle()
        assert [name for name, _ in log] == ["one", "nine"]

    def test_run_until_advances_clock_when_idle(self):
        kernel = GlobalScheduler()
        kernel.run(until=33.0)
        assert kernel.now == 33.0

    def test_run_until_in_the_past_never_rewinds_the_clock(self):
        kernel = GlobalScheduler()
        kernel.run(until=100.0)
        # pending future work must not let a stale bound rewind the clock
        kernel.schedule_at(150.0, lambda: None)
        kernel.run(until=50.0)
        assert kernel.now == 100.0
        with pytest.raises(ValueError):
            kernel.schedule_at(60.0, lambda: None)
        kernel.run_until_idle()
        assert kernel.now == 150.0

    def test_run_max_events(self):
        kernel = GlobalScheduler()
        shard = Simulator()
        kernel.register_simulator(shard, name="shard")
        for i in range(5):
            shard.schedule(float(i + 1), lambda: None)
        kernel.run(max_events=3)
        assert kernel.events_processed == 3

    def test_run_until_idle_budget_guard(self):
        kernel = GlobalScheduler()
        shard = Simulator()
        kernel.register_simulator(shard, name="shard")

        def forever():
            shard.schedule(1.0, forever)

        shard.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            kernel.run_until_idle(max_events=50)

    def test_kernel_schedule_in_global_past_rejected(self):
        kernel = GlobalScheduler()
        kernel.schedule_at(5.0, lambda: None)
        kernel.run_until_idle()
        with pytest.raises(ValueError):
            kernel.schedule_at(4.0, lambda: None)
        with pytest.raises(ValueError):
            kernel.schedule(-1.0, lambda: None)


class TestStatsAndTrace:
    def test_per_source_event_counts(self):
        kernel = GlobalScheduler()
        sim_a, sim_b = Simulator(), Simulator()
        kernel.register_simulator(sim_a, name="a")
        kernel.register_simulator(sim_b, name="b")
        for i in range(3):
            sim_a.schedule(float(i), lambda: None)
        sim_b.schedule(0.5, lambda: None)
        kernel.run_until_idle()
        assert kernel.stats.events_by_source == {"a": 3, "b": 1}
        assert kernel.stats.events_total == 4
        assert kernel.stats.busiest_sources(1) == [("a", 3)]

    def test_trace_records_global_times_and_sources(self):
        kernel = GlobalScheduler(record_trace=True)
        shard = Simulator()
        kernel.register_simulator(shard, name="shard", offset=100.0)
        shard.schedule(1.0, lambda: None)
        kernel.schedule_at(50.0, lambda: None)
        kernel.run_until_idle()
        assert kernel.trace == [(50.0, KERNEL_SOURCE), (101.0, "shard")]

    def test_fingerprint_is_reproducible(self):
        def run():
            kernel = GlobalScheduler()
            sim_a, sim_b = Simulator(), Simulator()
            kernel.register_simulator(sim_a, name="a")
            kernel.register_simulator(sim_b, name="b")
            sim_a.schedule(1.5, lambda: sim_a.schedule(2.0, lambda: None))
            sim_b.schedule(2.5, lambda: None)
            kernel.run_until_idle()
            return kernel.fingerprint

        assert run() == run()
        assert run() != GlobalScheduler().fingerprint


class TestHeapSelection:
    """The O(log S) head heap must replay the linear scan's order exactly."""

    def test_cross_source_scheduling_reindexes_the_target_head(self):
        # An event on A schedules an *earlier* event on B than anything the
        # kernel knew about; the head listener must surface it immediately.
        kernel = GlobalScheduler()
        sim_a = Simulator()
        sim_b = Simulator()
        kernel.register_simulator(sim_a, name="a")
        kernel.register_simulator(sim_b, name="b")
        log = []
        sim_a.schedule_at(1.0, lambda: sim_b.schedule_at(
            2.0, _recorder(kernel, log, "b")))
        sim_a.schedule_at(10.0, _recorder(kernel, log, "a"))
        kernel.run_until_idle()
        assert log == [("b", 2.0), ("a", 10.0)]

    def test_cancelled_head_is_skipped_for_the_next_real_head(self):
        kernel = GlobalScheduler()
        sim_a = Simulator()
        sim_b = Simulator()
        kernel.register_simulator(sim_a, name="a")
        kernel.register_simulator(sim_b, name="b")
        log = []
        doomed = sim_a.schedule_at(1.0, _recorder(kernel, log, "a-doomed"))
        sim_a.schedule_at(5.0, _recorder(kernel, log, "a"))
        sim_b.schedule_at(3.0, _recorder(kernel, log, "b"))
        doomed.cancel()
        kernel.run_until_idle()
        assert log == [("b", 3.0), ("a", 5.0)]

    def test_clamped_heads_tie_break_by_registration_order(self):
        # Two sources whose raw head times lie in the global past are both
        # effectively due "now"; the first-registered one must win even if
        # its raw head time is later -- the linear scan's exact semantics.
        kernel = GlobalScheduler()
        sim_a = Simulator()
        sim_b = Simulator()
        kernel.register_simulator(sim_a, name="a")
        kernel.register_simulator(sim_b, name="b")
        kernel.schedule_at(10.0, lambda: None)
        kernel.run_until_idle()
        assert kernel.now == 10.0
        log = []
        sim_a.schedule_at(5.0, _recorder(kernel, log, "a"))
        sim_b.schedule_at(3.0, _recorder(kernel, log, "b"))
        head = kernel.peek()
        assert head == (10.0, "a")
        kernel.run_until_idle()
        assert [name for name, _ in log] == ["a", "b"]
        # Both executed at the clamped global time.
        assert [t for _, t in log] == [10.0, 10.0]

    def test_unregistered_source_entries_are_discarded(self):
        kernel = GlobalScheduler()
        sim_a = Simulator()
        sim_b = Simulator()
        kernel.register_simulator(sim_a, name="a")
        kernel.register_simulator(sim_b, name="b")
        sim_a.schedule_at(1.0, lambda: None)
        sim_b.schedule_at(2.0, lambda: None)
        kernel.unregister("a")
        assert kernel.peek() == (2.0, "b")
        kernel.run_until_idle()
        assert kernel.now == 2.0

    def test_peek_is_idempotent_and_matches_step(self):
        kernel = GlobalScheduler()
        sim = Simulator()
        kernel.register_simulator(sim, name="s")
        sim.schedule_at(4.0, lambda: None)
        assert kernel.peek() == kernel.peek() == (4.0, "s")
        assert kernel.step()
        assert kernel.now == 4.0
