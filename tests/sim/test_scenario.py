"""Scenario engine tests, including the cross-shard interleaving acceptance
criterion: repair and migration events interleave with foreground operations
across at least two shards on one global timeline, while every shard history
stays atomic."""

from __future__ import annotations

import pytest

from repro.core.config import LDSConfig
from repro.sim import (
    ClusterSimulation,
    Scenario,
    ScenarioAction,
    correlated_pool_failure,
    flash_crowd,
    migration_under_load,
    repair_under_load,
)
from repro.sim.scenario import (
    FAIL_NODE,
    JOIN_POOL,
    LATENCY_SHIFT,
    WORKLOAD_PHASE,
)

KEYS = [f"obj-{i}" for i in range(16)]
POOLS = ["pool-0", "pool-1"]


@pytest.fixture
def config() -> LDSConfig:
    return LDSConfig(n1=3, n2=4, f1=1, f2=1)


def _shard_key(op_id: str) -> str:
    """The object key behind a merged-history operation id."""
    return op_id.split("/")[0].split("@")[0]


class TestActionValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScenarioAction(at=0.0, kind="meteor-strike")

    def test_workload_phase_needs_a_workload(self):
        with pytest.raises(ValueError):
            ScenarioAction(at=0.0, kind=WORKLOAD_PHASE)

    def test_targeted_actions_need_a_target(self):
        with pytest.raises(ValueError):
            ScenarioAction(at=0.0, kind=FAIL_NODE)

    def test_scenario_orders_actions_by_time(self):
        scenario = Scenario(name="s")
        scenario.add(ScenarioAction(at=5.0, kind=LATENCY_SHIFT, scale=2.0))
        scenario.add(ScenarioAction(at=1.0, kind=LATENCY_SHIFT, scale=1.5))
        assert [a.at for a in scenario.sorted_actions()] == [1.0, 5.0]
        assert scenario.duration == 5.0


class TestRepairUnderLoadInterleaving:
    """The acceptance scenario: repair + migration vs foreground load."""

    @pytest.fixture
    def simulation(self, config) -> ClusterSimulation:
        simulation = ClusterSimulation(config, POOLS, seed=11,
                                       repair_min_interval=10.0)
        scenario = repair_under_load(
            KEYS, "pool-0/l2-0", seed=11,
            operations=100, duration=600.0, fail_at=120.0,
        )
        scenario.add(ScenarioAction(at=300.0, kind=JOIN_POOL, target="pool-2",
                                    label="join pool-2"))
        simulation.apply(scenario)
        return simulation

    def test_every_shard_history_is_atomic(self, simulation):
        assert simulation.check_atomicity() is None
        assert all(op.is_complete for op in simulation.history())

    def test_repairs_happened_and_node_recovered(self, simulation):
        assert simulation.repair.stats.repairs_completed >= 1
        assert simulation.cluster.node("pool-0/l2-0").status == "alive"

    def test_migrations_happened(self, simulation):
        assert simulation.router.stats.migrations >= 1
        assert "pool-2" in simulation.membership.pools

    def test_repair_and_migration_interleave_with_foreground_ops(self, simulation):
        """Foreground operations on >= 2 shards complete both before and
        after background events, all on the one global timeline."""
        timeline = simulation.timeline()
        assert timeline == sorted(timeline, key=lambda e: e[0])

        repair_times = [t for t, cat, _ in timeline if cat == "repair-done"]
        migrate_times = [t for t, cat, _ in timeline if cat == "migrate"]
        assert repair_times and migrate_times

        def shards_responding(predicate):
            return {
                _shard_key(detail.split()[-1])
                for t, cat, detail in timeline
                if cat == "respond" and predicate(t)
            }

        first_background = min(repair_times[0], migrate_times[0])
        last_background = max(repair_times[-1], migrate_times[-1])
        # Multiple shards answered foreground traffic before the first
        # background event and after the last one: the background work
        # genuinely ran *between* foreground operations.
        assert len(shards_responding(lambda t: t < first_background)) >= 2
        assert len(shards_responding(lambda t: t > last_background)) >= 2
        # And foreground operations on >= 2 distinct shards completed
        # strictly inside the background activity window.
        inside = shards_responding(
            lambda t: first_background < t < last_background)
        assert len(inside) >= 2

    def test_kernel_saw_cross_shard_interleaving(self, simulation):
        stats = simulation.interleaving
        shard_sources = [name for name in stats.events_by_source
                         if name.startswith("shard:")]
        assert len(shard_sources) >= 2
        assert stats.context_switches > len(shard_sources)


class TestShippedScenarios:
    def test_migration_under_load(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=3)
        simulation.apply(migration_under_load(
            KEYS, "pool-9", seed=3, operations=60, duration=400.0, join_at=150.0,
        ))
        assert simulation.check_atomicity() is None
        assert simulation.router.stats.migrations >= 1
        # Migrated epochs preserved their values: spot-check via reads.
        moved = [key for _, key, _, _ in simulation.router.migration_log]
        assert moved
        for key in moved:
            assert simulation.router.shards[key].epoch >= 1

    def test_correlated_pool_failure(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=4)
        simulation.apply(correlated_pool_failure(
            KEYS, "pool-0", seed=4, operations=60, duration=400.0,
            fail_at=120.0, stagger=5.0,
        ))
        assert simulation.check_atomicity() is None
        assert all(op.is_complete for op in simulation.history())
        # The L2 node was repaired and recovered; the L1 node needs no
        # repair (the protocol tolerates f1 edge crashes natively).
        assert simulation.cluster.node("pool-0/l2-0").status == "alive"
        assert simulation.cluster.node("pool-0/l1-0").status == "failed"
        assert simulation.repair.stats.repairs_completed >= 1

    def test_flash_crowd(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=6,
                                       writers_per_shard=2, readers_per_shard=2)
        simulation.apply(flash_crowd(
            KEYS, seed=6, operations=40, crowd_operations=60,
            shift_at=200.0, duration=400.0, latency_scale=1.5,
        ))
        assert simulation.check_atomicity() is None
        assert simulation.latency_regime.scale == 1.5
        shift_logged = [entry for entry in simulation.engine.log
                        if entry[1] == LATENCY_SHIFT]
        assert len(shift_logged) == 1 and shift_logged[0][0] == 200.0
        # The crowd phase really ran as a second client population.
        crowd_ops = [op for op in simulation.history()
                     if op.client_id.endswith("-1")]
        assert crowd_ops


class TestLatencyShiftEffect:
    def test_latency_scale_stretches_operation_latencies(self, config):
        def mean_latency(scale):
            simulation = ClusterSimulation(config, POOLS, seed=9)
            if scale != 1.0:
                simulation.set_latency_scale(scale)
            handles = [simulation.invoke_write(key, b"v", at=float(i))
                       for i, key in enumerate(KEYS[:6])]
            simulation.run_until_idle()
            history = simulation.history().complete()
            durations = [op.duration for op in history]
            assert handles and durations
            return sum(durations) / len(durations)

        assert mean_latency(2.0) > 1.5 * mean_latency(1.0)
