"""Determinism regression: one root seed fixes the entire global event order.

Every stochastic cluster component (per-shard latency models, repair-slot
jitter, workload samplers) derives its RNG seed from the simulation's root
seed through :func:`repro.cluster.ring.derive_seed`, so two runs with the
same seed must replay the identical merged event sequence -- verified here
via the kernel's full trace and its rolling fingerprint.
"""

from __future__ import annotations

from repro.cluster.ring import derive_seed
from repro.core.config import LDSConfig
from repro.sim import ClusterSimulation, ScenarioAction, repair_under_load
from repro.sim.scenario import JOIN_POOL

KEYS = [f"obj-{i}" for i in range(12)]
POOLS = ["pool-0", "pool-1"]


def _run(seed: int):
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    simulation = ClusterSimulation(
        config, POOLS, seed=seed, record_trace=True,
        repair_min_interval=8.0, repair_slot_jitter=3.0,
    )
    scenario = repair_under_load(
        KEYS, "pool-0/l2-0", seed=seed,
        operations=80, duration=500.0, fail_at=100.0,
    )
    scenario.add(ScenarioAction(at=250.0, kind=JOIN_POOL, target="pool-2"))
    simulation.apply(scenario)
    return simulation


class TestDeriveSeed:
    def test_stable_and_position_sensitive(self):
        assert derive_seed(7, "latency", "pool-0", "k") == \
            derive_seed(7, "latency", "pool-0", "k")
        assert derive_seed(7, "a", "b") != derive_seed(7, "ab", "")
        assert derive_seed(7, "a", "b") != derive_seed(8, "a", "b")
        assert 0 <= derive_seed(None, "x") < 2 ** 31


class TestGlobalDeterminism:
    def test_same_seed_replays_the_identical_event_order(self):
        first = _run(seed=42)
        second = _run(seed=42)
        assert first.kernel.fingerprint == second.kernel.fingerprint
        assert first.kernel.trace == second.kernel.trace
        assert first.check_atomicity() is None

    def test_same_seed_replays_identical_histories_and_repairs(self):
        first = _run(seed=42)
        second = _run(seed=42)

        def signature(simulation):
            history = sorted(
                (op.op_id, op.invoked_at, op.responded_at)
                for op in simulation.history(global_clock=True)
            )
            repairs = [(t.key, t.scheduled_at, t.completed_at, t.status)
                       for t in simulation.repair.tasks]
            return history, repairs, simulation.communication_cost

        assert signature(first) == signature(second)

    def test_different_seeds_diverge(self):
        # Latency draws are continuous, so two seeds producing the same
        # merged event sequence would be a genuine bug, not bad luck.
        first = _run(seed=1)
        second = _run(seed=2)
        assert first.kernel.fingerprint != second.kernel.fingerprint

    def test_multi_failure_repair_dispatch_is_fingerprint_stable(self):
        """Repair dispatch over several simultaneously failed nodes walks
        ``Membership.failed_nodes`` (now canonically ordered) and the
        scheduler's slot pool; a fixed seed must replay the identical
        merged event order even with jittered slots and correlated
        failures in flight."""
        def run():
            config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
            simulation = ClusterSimulation(
                config, POOLS, seed=13, record_trace=True,
                repair_min_interval=6.0, repair_max_concurrent=2,
                repair_slot_jitter=4.0,
            )
            from repro.sim import correlated_pool_failure
            simulation.apply(correlated_pool_failure(
                KEYS, "pool-0", seed=13, operations=60, duration=400.0,
                fail_at=80.0, stagger=5.0))
            return simulation

        first, second = run(), run()
        assert first.kernel.fingerprint == second.kernel.fingerprint
        assert first.kernel.trace == second.kernel.trace
        assert [(t.key, t.scheduled_at, t.status) for t in first.repair.tasks] \
            == [(t.key, t.scheduled_at, t.status) for t in second.repair.tasks]
        assert first.repair.tasks  # repairs actually ran

    def test_unseeded_cluster_repair_jitter_is_not_secretly_seeded(self):
        """seed=None must yield a genuinely unseeded jitter RNG, not the
        fixed sequence of derive_seed(None, 'repair')."""
        import random

        from repro.cluster.deployment import ShardedCluster

        config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
        cluster = ShardedCluster(config, POOLS, repair_slot_jitter=2.0)
        buggy_constant = random.Random(derive_seed(None, "repair")).random()
        draws = [cluster.repair._rng.random() for _ in range(3)]
        assert draws[0] != buggy_constant  # collision odds ~2^-53
