"""The quorum-read and write-forwarding scenario family.

Acceptance tests of the quorum read path and follower write forwarding on
the global clock: quorum merges resolving a read burst over genuinely
lagging stores (with read repair catching observed-stale stores up on the
spot), writes arriving at follower pools and riding a failover freeze
into the promoted epoch -- with the combined atomicity + session audit
staying clean under fixed seeds, and the quorum-drop injection proving
the auditor would catch a merge that lost its freshest response.
"""

from __future__ import annotations

import pytest

from repro.cluster.replicas import ReplicationConfig
from repro.consistency.injection import (
    inject_quorum_version_drop,
    is_quorum_read,
)
from repro.consistency.sessions import check_sessions, split_object_id
from repro.consistency.history import WRITE
from repro.core.config import LDSConfig
from repro.sim import (
    ClusterSimulation,
    forwarded_writes_during_failover,
    quorum_reads_under_lag,
)

KEYS = [f"obj-{i}" for i in range(16)]
POOLS = [f"pool-{i}" for i in range(4)]


@pytest.fixture
def config() -> LDSConfig:
    return LDSConfig(n1=3, n2=4, f1=1, f2=1)


def run_quorum(config, seed: int = 7, *, read_repair: bool = True,
               record_trace: bool = False) -> ClusterSimulation:
    simulation = ClusterSimulation(
        config, POOLS, seed=seed, record_trace=record_trace,
        writers_per_shard=2, readers_per_shard=2,
        replication=ReplicationConfig(r=3, replication_lag=400.0,
                                      read_quorum=2,
                                      read_repair=read_repair),
        read_policy="quorum",
    )
    simulation.ensure_shards(KEYS)
    simulation.apply(quorum_reads_under_lag(KEYS, seed=seed))
    return simulation


class TestQuorumReadsUnderLag:
    def test_quorum_merges_resolve_the_burst_and_audit_clean(self, config):
        simulation = run_quorum(config)
        distribution = simulation.read_distribution()
        assert distribution.quorum_reads > 50, distribution.describe()
        assert distribution.mean_quorum_depth == pytest.approx(2.0)
        # The lag is longer than the burst window, so merges must have
        # observed (and repaired) genuinely stale stores.
        assert distribution.read_repairs > 0
        assert simulation.cluster.router.incomplete_operations() == 0
        report = simulation.audit()
        assert report.ok, report.describe()

    def test_read_repair_measurably_reduces_session_fallbacks(self, config):
        repaired = run_quorum(config, read_repair=True).read_distribution()
        lag_only = run_quorum(config, read_repair=False).read_distribution()
        assert repaired.quorum_reads == lag_only.quorum_reads
        assert lag_only.read_repairs == 0
        # Identical workload, identical quorum windows: with repair off,
        # follower-only merges keep landing below the session floors and
        # fall back to the primaries; with repair on, the stores the
        # merges touch are current and the fallback rate drops hard.
        assert repaired.session_fallbacks < lag_only.session_fallbacks
        assert repaired.session_fallback_rate \
            <= lag_only.session_fallback_rate * 0.6

    def test_read_repairs_are_visible_on_the_timeline(self, config):
        simulation = run_quorum(config)
        repairs = [entry for entry in simulation.timeline()
                   if entry[1] == "read-repair"]
        assert repairs
        assert simulation.read_distribution().read_repairs == len(repairs)

    def test_same_seed_replays_identically(self, config):
        first = run_quorum(config, record_trace=True)
        second = run_quorum(config, record_trace=True)
        assert first.kernel.fingerprint == second.kernel.fingerprint
        assert first.kernel.trace == second.kernel.trace
        assert (first.read_distribution().counts
                == second.read_distribution().counts)

    def test_quorum_drop_injection_is_detected(self, config):
        simulation = run_quorum(config)
        history = simulation.history(global_clock=True)
        assert any(is_quorum_read(op) for op in history)
        injection = inject_quorum_version_drop(history)
        report = check_sessions(injection.history)
        assert not report.ok
        blamed = {op_id for violation in report.violations
                  for op_id in violation.operations}
        assert injection.mutated[0] in blamed


class TestForwardedWritesDuringFailover:
    def run_forwarding(self, config, seed: int = 5) -> ClusterSimulation:
        simulation = ClusterSimulation(
            config, POOLS, seed=seed,
            replication=ReplicationConfig(r=3, replication_lag=25.0,
                                          failover_detection_delay=12.0,
                                          write_ingress="nearest"),
            read_policy="round-robin",
        )
        simulation.ensure_shards(KEYS)
        simulation.apply(forwarded_writes_during_failover(KEYS, "pool-0",
                                                          seed=seed))
        return simulation

    def test_forwarded_writes_complete_through_the_failover(self, config):
        simulation = self.run_forwarding(config)
        distribution = simulation.read_distribution()
        assert distribution.forwarded_writes > 0, distribution.describe()
        stats = simulation.replicas.stats
        assert stats.promotions >= 1
        assert simulation.cluster.router.incomplete_operations() == 0
        report = simulation.audit()
        assert report.ok, report.describe()

    def test_writes_arriving_in_the_freeze_land_in_the_promoted_epoch(
            self, config):
        simulation = self.run_forwarding(config)
        # The failover windows per key: primary-down .. promote.
        windows = {}
        down_at = {}
        for time, kind, detail in simulation.replicas.failover_log:
            key = detail.split(":")[0]
            if kind == "primary-down":
                down_at[key] = time
            elif kind == "promote" and key in down_at:
                windows.setdefault(key, []).append((down_at.pop(key), time))
        assert windows
        frozen_writes = [
            op for op in simulation.history(global_clock=True)
            if op.kind == WRITE and any(
                start <= op.invoked_at <= end
                for start, end in windows.get(
                    split_object_id(op.object_id)[0], ())
            )
        ]
        # Writes kept arriving at follower ingresses during the freeze and
        # every one of them completed (flushed into the promoted epoch).
        assert frozen_writes
        assert all(op.is_complete for op in frozen_writes)
        promoted = [op for op in frozen_writes
                    if split_object_id(op.object_id)[1] >= 1]
        assert promoted, "frozen writes must execute on the promoted epoch"
