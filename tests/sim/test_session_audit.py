"""Cluster-wide session audits over the shipped scenarios.

Acceptance criteria of the session auditor: every shipped scenario audits
clean (atomic per epoch AND all four session guarantees hold across keys,
shards and migration epochs) under kernel mode with a fixed seed, while
the injection harness proves each guarantee class is actually detectable
on a real scenario history.
"""

from __future__ import annotations

import pytest

from repro.consistency.injection import inject_session_violation
from repro.consistency.sessions import SESSION_GUARANTEES, check_sessions
from repro.core.config import LDSConfig
from repro.sim import (
    ClusterSimulation,
    correlated_pool_failure,
    flash_crowd,
    migration_under_load,
    repair_under_load,
)

KEYS = [f"obj-{i}" for i in range(16)]
POOLS = ["pool-0", "pool-1"]


@pytest.fixture
def config() -> LDSConfig:
    return LDSConfig(n1=3, n2=4, f1=1, f2=1)


def _audited(simulation):
    report = simulation.audit()
    assert report.atomicity is None, report.atomicity
    assert report.sessions.ok, report.sessions.violations
    assert report.ok and "atomic" in report.describe()
    # The audit actually exercised cross-shard session state.
    assert report.sessions.sessions_checked >= 1
    assert report.sessions.pairs_checked > 0
    return report


class TestScenariosAuditClean:
    def test_repair_under_load(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=11,
                                       repair_min_interval=10.0)
        simulation.apply(repair_under_load(
            KEYS, "pool-0/l2-0", seed=11, operations=120,
            duration=600.0, fail_at=120.0,
        ))
        assert simulation.repair.stats.repairs_completed >= 1
        _audited(simulation)

    def test_migration_under_load(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=3)
        simulation.apply(migration_under_load(
            KEYS, "pool-9", seed=3, operations=120, duration=600.0,
            join_at=150.0,
        ))
        # The audit must span migration epochs, not dodge them.
        assert simulation.router.stats.migrations >= 1
        report = _audited(simulation)
        epochs = {op.object_id for op in simulation.history(global_clock=True)}
        assert any("@e" in object_id for object_id in epochs)
        assert report.sessions.operations_checked == 120

    def test_correlated_pool_failure(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=4)
        simulation.apply(correlated_pool_failure(
            KEYS, "pool-0", seed=4, operations=120, duration=600.0,
            fail_at=120.0, stagger=5.0,
        ))
        _audited(simulation)

    def test_flash_crowd(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=6,
                                       writers_per_shard=2,
                                       readers_per_shard=2)
        simulation.apply(flash_crowd(
            KEYS, seed=6, operations=80, crowd_operations=100,
            shift_at=250.0, duration=400.0, latency_scale=1.5,
        ))
        report = _audited(simulation)
        # Calm and crowd populations are audited as separate sessions.
        assert report.sessions.sessions_checked == 2
        sessions = set(simulation.history(global_clock=True).sessions())
        assert sessions == {"client-0", "crowd-1"}


class TestInjectionOnScenarioHistories:
    """Each guarantee class is detectable on a real cross-shard history."""

    @pytest.fixture(scope="class")
    def scenario_history(self):
        simulation = ClusterSimulation(LDSConfig(n1=3, n2=4, f1=1, f2=1),
                                       POOLS, seed=11,
                                       repair_min_interval=10.0)
        simulation.apply(repair_under_load(
            KEYS, "pool-0/l2-0", seed=11, operations=160,
            duration=600.0, fail_at=120.0,
        ))
        history = simulation.history(global_clock=True)
        assert check_sessions(history).ok
        return history

    @pytest.mark.parametrize("guarantee", SESSION_GUARANTEES)
    def test_injected_violation_is_detected(self, scenario_history, guarantee):
        injection = inject_session_violation(scenario_history, guarantee)
        report = check_sessions(injection.history)
        flagged = report.for_guarantee(guarantee)
        assert flagged
        assert any(set(injection.mutated) & set(v.operations)
                   for v in flagged)


class TestSessionThreading:
    def test_explicit_sessions_survive_to_the_merged_history(self, config):
        simulation = ClusterSimulation(config, POOLS, seed=1)
        simulation.invoke_write("a", b"x", at=0.0, session="alice")
        simulation.invoke_read("b", at=50.0, session="alice")
        simulation.invoke_write("c", b"y", at=100.0, session="bob")
        simulation.run_until_idle()
        history = simulation.history(global_clock=True)
        by_session = {}
        for op in history:
            by_session.setdefault(op.session, []).append(op.object_id)
        assert sorted(by_session["alice"]) == ["a", "b"]
        assert by_session["bob"] == ["c"]

    def test_workload_arrivals_get_default_sessions(self, config):
        from repro.workloads.generator import WorkloadGenerator

        simulation = ClusterSimulation(config, POOLS, seed=2)
        generator = WorkloadGenerator(seed=2, client_spacing=60.0)
        workload = generator.keyed_random(KEYS[:4], 20, 0.5, 400.0)
        simulation.add_workload(workload)
        simulation.run_until_idle()
        history = simulation.history(global_clock=True)
        assert len(history) == 20
        assert all(op.session == "client-0" for op in history)
