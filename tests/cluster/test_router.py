"""ObjectRouter fan-out correctness, batching and migration."""

from __future__ import annotations

import pytest

from repro.cluster.membership import Membership
from repro.cluster.router import ObjectRouter
from repro.core.config import LDSConfig
from repro.net.latency import FixedLatencyModel

POOLS = ["pool-0", "pool-1", "pool-2"]


@pytest.fixture
def config() -> LDSConfig:
    return LDSConfig(n1=3, n2=4, f1=1, f2=1)


@pytest.fixture
def router(config) -> ObjectRouter:
    membership = Membership.for_pools(POOLS, n1=config.n1, n2=config.n2)
    return ObjectRouter(
        config, membership,
        latency_factory=lambda pool, key: FixedLatencyModel(tau0=1, tau1=1, tau2=10),
    )


class TestFanOut:
    def test_values_round_trip_per_key(self, router):
        for i in range(12):
            router.write(f"obj-{i}", f"value-{i}".encode())
        for i in range(12):
            assert router.read(f"obj-{i}").value == f"value-{i}".encode()

    def test_shards_land_on_the_ring_prescribed_pool(self, router):
        for i in range(20):
            router.write(f"obj-{i}", b"x")
        for key, shard in router.shards.items():
            assert shard.pool == router.membership.pool_for(key)

    def test_keys_are_isolated(self, router):
        router.write("obj-a", b"alpha")
        router.write("obj-b", b"beta")
        assert router.read("obj-a").value == b"alpha"
        assert router.read("obj-b").value == b"beta"

    def test_shard_counts_cover_all_pools(self, router):
        for i in range(30):
            router.write(f"obj-{i}", b"x")
        counts = router.shard_counts()
        assert set(counts) == set(POOLS)
        assert sum(counts.values()) == 30

    def test_merged_history_is_well_formed_and_atomic(self, router):
        for i in range(8):
            router.write(f"obj-{i}", bytes([i + 1]) * 4)
            router.read(f"obj-{i}")
        history = router.history()
        assert len(history) == 16
        assert history.is_well_formed()
        assert router.check_atomicity() is None

    def test_operation_cost_and_communication_cost(self, router):
        handle_w = router.invoke_write("obj-0", b"payload")
        router.run_until_idle()
        assert router.operation_cost(handle_w) > 0
        assert router.communication_cost >= router.operation_cost(handle_w)
        assert router.result(handle_w) is not None


class TestBatching:
    def test_queued_operations_flush_as_one_batch_per_shard(self, router):
        for index in range(6):
            router.invoke_write("obj-0", bytes([index + 1]), at=60.0 * index)
        assert router.stats.batches_flushed == 0
        flushed = router.flush()
        assert flushed == 6
        assert router.stats.batches_flushed == 1
        assert router.stats.largest_batch == 6
        router.run_until_idle()
        assert router.check_atomicity() is None

    def test_scheduling_behind_the_shard_clock_shifts_the_batch(self, router):
        router.invoke_write("obj-0", b"first", at=0.0)
        router.run_until_idle()
        # The shard clock is now far ahead of t=0; a new nominal window
        # starting at 0 must be shifted, preserving client well-formedness.
        router.invoke_write("obj-0", b"second", at=0.0)
        router.invoke_read("obj-0", at=60.0)
        router.run_until_idle()
        assert router.check_atomicity() is None
        assert router.incomplete_operations() == 0
        assert router.read("obj-0").value == b"second"


class TestFailureHandling:
    def test_node_failure_crashes_the_slot_on_every_pool_shard(self, router, config):
        for i in range(20):
            router.write(f"obj-{i}", b"x")
        pool = "pool-1"
        affected = router.shards_on_pool(pool)
        assert affected, "placement should put some of 20 keys on pool-1"
        router.membership.fail(f"{pool}/l2-2", time=0.0)
        for shard in affected:
            assert shard.system.alive_l2_count() == config.n2 - 1
        for shard in router.shards.values():
            if shard.pool != pool:
                assert shard.system.alive_l2_count() == config.n2

    def test_shard_created_on_degraded_pool_starts_degraded(self, router, config):
        router.membership.fail("pool-0/l2-0", time=0.0)
        key = next(k for k in (f"k-{i}" for i in range(100))
                   if router.membership.pool_for(k) == "pool-0")
        shard = router.shard(key)
        assert shard.system.alive_l2_count() == config.n2 - 1

    def test_reads_survive_one_l2_failure(self, router):
        router.write("obj-0", b"durable")
        pool = router.shards["obj-0"].pool
        router.membership.fail(f"{pool}/l2-0", time=0.0)
        assert router.read("obj-0").value == b"durable"


class TestMigration:
    def test_rebalance_moves_values_and_keeps_atomicity(self, router, config):
        for i in range(15):
            router.write(f"obj-{i}", f"v{i}".encode())
        router.membership.join_pool("pool-3", n1=config.n1, n2=config.n2)
        plan = router.rebalance(reason="join pool-3")
        assert plan.moves, "a new pool should attract some shards"
        assert router.stats.migrations == len(plan)
        for move in plan.moves:
            assert router.shards[move.key].pool == move.target
            assert router.shards[move.key].epoch == 1
        for i in range(15):
            assert router.read(f"obj-{i}").value == f"v{i}".encode()
        assert router.check_atomicity() is None

    def test_archived_epoch_results_remain_queryable(self, router, config):
        handle = router.invoke_write("obj-0", b"before-move")
        router.run_until_idle()
        cost_before = router.operation_cost(handle)
        router.membership.join_pool("pool-3", n1=config.n1, n2=config.n2)
        # Force a move of obj-0 regardless of where the ring would put it.
        from repro.cluster.placement import ShardMove
        source = router.shards["obj-0"].pool
        target = next(p for p in router.membership.pools if p != source)
        router.migrate(ShardMove(key="obj-0", source=source, target=target))
        assert router.result(handle) is not None
        assert router.operation_cost(handle) == cost_before
        assert router.read("obj-0").value == b"before-move"

    def test_migration_copy_read_is_excluded_from_merged_history(self, router, config):
        from repro.cluster.placement import ShardMove
        router.write("obj-0", b"payload")
        before_reads = len(router.history().reads())
        source = router.shards["obj-0"].pool
        target = next(p for p in router.membership.pools if p != source)
        router.migrate(ShardMove(key="obj-0", source=source, target=target))
        # The internal copy read is real traffic but not a workload read.
        assert len(router.history().reads()) == before_reads
        assert router.check_atomicity() is None


class TestGlobalClockOffsets:
    def test_pre_attach_epochs_are_backfilled_onto_the_global_timeline(
            self, router):
        """Regression: an epoch retired before attach_kernel must map onto
        the global timeline via the backfilled offset -- strictly before
        its successor epoch -- rather than being silently shifted by 0."""
        from repro.cluster.placement import ShardMove
        from repro.sim.kernel import GlobalScheduler

        router.write("obj-0", b"v0")
        source = router.shards["obj-0"].pool
        target = next(p for p in router.membership.pools if p != source)
        router.migrate(ShardMove(key="obj-0", source=source, target=target))
        router.write("obj-0", b"v1")
        router.attach_kernel(GlobalScheduler())
        router.write("obj-0", b"v2")
        history = router.history(global_clock=True)
        epoch0 = [op for op in history if op.object_id == "obj-0"]
        epoch1 = [op for op in history if op.object_id == "obj-0@e1"]
        assert epoch0 and epoch1
        assert (max(op.responded_at for op in epoch0)
                <= min(op.invoked_at for op in epoch1))

    def test_missing_offset_raises_instead_of_misplacing_the_epoch(
            self, router):
        from repro.sim.kernel import GlobalScheduler

        router.attach_kernel(GlobalScheduler())
        router.write("obj-0", b"x")
        del router._kernel_offsets["obj-0"]
        with pytest.raises(RuntimeError, match="offset"):
            router.history(global_clock=True)


class TestSessionThreading:
    def test_sessions_attach_to_merged_history(self, router):
        router.invoke_write("obj-0", b"a", session="alice")
        router.invoke_read("obj-1", session="alice")
        router.invoke_write("obj-2", b"b")
        router.run_until_idle()
        sessions = {op.object_id: op.session for op in router.history()}
        assert sessions["obj-0"] == "alice"
        assert sessions["obj-1"] == "alice"
        assert sessions["obj-2"] is None

    def test_sessions_survive_migration_archival(self, router):
        from repro.cluster.placement import ShardMove

        router.invoke_write("obj-0", b"x", session="s")
        router.run_until_idle()
        source = router.shards["obj-0"].pool
        target = next(p for p in router.membership.pools if p != source)
        router.migrate(ShardMove(key="obj-0", source=source, target=target))
        [write_op] = router.history().writes()
        assert write_op.session == "s"

    def test_keys_colliding_with_epoch_suffix_are_rejected(self, router):
        """A user key ending in '@e<n>' would make merged object ids (and
        the session auditor's key/epoch parse) ambiguous."""
        with pytest.raises(ValueError, match="reserved epoch suffix"):
            router.write("sensor@e2", b"x")
        router.write("sensor@exp", b"x")  # non-numeric suffix is a plain key
        assert router.read("sensor@exp").value == b"x"
