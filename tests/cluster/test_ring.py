"""HashRing determinism, balance and minimal-disruption properties."""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing, stable_hash

POOLS = ["pool-0", "pool-1", "pool-2", "pool-3"]
KEYS_10K = [f"obj-{i}" for i in range(10_000)]


def build_ring(names, vnodes=128):
    ring = HashRing(vnodes=vnodes)
    for name in names:
        ring.add_node(name)
    return ring


class TestDeterminism:
    def test_same_members_same_placement_regardless_of_insertion_order(self):
        forward = build_ring(POOLS)
        backward = build_ring(list(reversed(POOLS)))
        for key in KEYS_10K[:500]:
            assert forward.node_for(key) == backward.node_for(key)

    def test_placement_is_stable_across_instances(self):
        first = build_ring(POOLS)
        second = build_ring(POOLS)
        assert [first.node_for(k) for k in KEYS_10K[:200]] == \
               [second.node_for(k) for k in KEYS_10K[:200]]

    def test_stable_hash_is_process_independent(self):
        # BLAKE2b, not the salted builtin hash(): fixed expectation values.
        assert stable_hash("obj-0") == stable_hash("obj-0")
        assert stable_hash("obj-0") != stable_hash("obj-1")

    def test_nodes_for_returns_distinct_members(self):
        ring = build_ring(POOLS)
        replicas = ring.nodes_for("obj-42", 3)
        assert len(replicas) == 3
        assert len(set(replicas)) == 3
        assert replicas[0] == ring.node_for("obj-42")


class TestBalance:
    def test_stddev_of_shard_sizes_under_10k_keys(self):
        ring = build_ring(POOLS)
        balance = ring.balance(KEYS_10K)
        assert balance.mean == pytest.approx(2500.0)
        # Virtual nodes keep the spread tight: stddev well under 15% of mean.
        assert balance.coefficient_of_variation < 0.15
        assert all(count > 0 for count in balance.counts.values())

    def test_more_vnodes_tighten_the_spread(self):
        coarse = build_ring(POOLS, vnodes=8)
        fine = build_ring(POOLS, vnodes=256)
        assert (fine.balance(KEYS_10K).coefficient_of_variation
                <= coarse.balance(KEYS_10K).coefficient_of_variation)

    def test_weighted_node_attracts_proportional_share(self):
        ring = HashRing(vnodes=128)
        ring.add_node("small", weight=1.0)
        ring.add_node("big", weight=3.0)
        counts = ring.key_counts(KEYS_10K)
        assert counts["big"] > 2 * counts["small"]


class TestMinimalDisruption:
    def test_removal_only_remaps_keys_of_the_removed_node(self):
        ring = build_ring(POOLS)
        before = {key: ring.node_for(key) for key in KEYS_10K[:2000]}
        ring.remove_node("pool-2")
        for key, owner in before.items():
            if owner != "pool-2":
                assert ring.node_for(key) == owner

    def test_addition_moves_roughly_one_over_n_of_the_keys(self):
        ring = build_ring(POOLS)
        before = {key: ring.node_for(key) for key in KEYS_10K}
        ring.add_node("pool-4")
        moved = sum(1 for key, owner in before.items()
                    if ring.node_for(key) != owner)
        # Expected move fraction is 1/5; allow generous slack.
        assert 0.10 < moved / len(KEYS_10K) < 0.30


class TestEdgeCases:
    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.node_for("obj-0")

    def test_unknown_member_removal_raises(self):
        ring = build_ring(POOLS)
        with pytest.raises(KeyError):
            ring.remove_node("nope")

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)
        ring = HashRing()
        with pytest.raises(ValueError):
            ring.add_node("pool-0", weight=0.0)

    def test_membership_queries(self):
        ring = build_ring(POOLS)
        assert "pool-0" in ring
        assert len(ring) == 4
        assert ring.nodes == sorted(POOLS)


class TestReweight:
    def test_reweight_leaves_no_stale_or_duplicate_vnodes(self):
        ring = build_ring(["a", "b"], vnodes=32)
        baseline = list(ring._ring)
        ring.add_node("a", weight=2.0)
        entries = ring._ring
        assert len(entries) == len(set(entries)), "duplicate vnodes after re-weight"
        counts: dict = {}
        for _, name in entries:
            counts[name] = counts.get(name, 0) + 1
        assert counts == {"a": 64, "b": 32}
        # Re-weighting back restores the exact original ring (no leftovers).
        ring.add_node("a", weight=1.0)
        assert ring._ring == baseline

    def test_reweight_only_shifts_keys_toward_the_heavier_node(self):
        ring = build_ring(POOLS, vnodes=64)
        before = {key: ring.node_for(key) for key in KEYS_10K[:2000]}
        ring.add_node("pool-0", weight=2.0)
        moved = {key for key, owner in before.items()
                 if ring.node_for(key) != owner}
        # Every remapped key lands on the up-weighted node; nothing shuffles
        # between the untouched nodes.
        assert moved
        assert all(ring.node_for(key) == "pool-0" for key in moved)


class TestDeriveSeed:
    """derive_seed defines cross-process reproducibility: its outputs are a
    documented contract, so the scheme must not drift silently."""

    def test_stable_and_pinned(self):
        from repro.cluster.ring import derive_seed

        assert derive_seed(17, "latency", "pool-0", "k") == 1206802350
        assert derive_seed(17, "latency", "pool-0", "k") == \
            derive_seed(17, "latency", "pool-0", "k")

    def test_position_and_boundary_sensitivity(self):
        from repro.cluster.ring import derive_seed

        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_output_is_a_valid_31_bit_seed(self):
        from repro.cluster.ring import derive_seed

        for parts in [(0,), (1, "x"), (999, "a", "b", "c"), ("root", 3.5)]:
            seed = derive_seed(*parts)
            assert 0 <= seed < 2 ** 31


class TestNodesForReplicaSets:
    """Edge cases of the replica-placement primitive ``nodes_for``."""

    def test_distinct_under_vnode_wraparound(self):
        # With few members and many vnodes, walks starting near the end of
        # the ring must wrap and still return distinct members for *every*
        # key, including keys hashing past the last virtual node.
        ring = build_ring(["a", "b", "c"], vnodes=4)
        for i in range(500):
            replicas = ring.nodes_for(f"key-{i}", 3)
            assert len(replicas) == len(set(replicas)) == 3

    def test_count_exceeding_membership_returns_every_member(self):
        ring = build_ring(["a", "b"])
        assert sorted(ring.nodes_for("k", 5)) == ["a", "b"]
        assert sorted(ring.nodes_for("k", 2)) == ["a", "b"]

    def test_count_one_matches_node_for(self):
        ring = build_ring(["a", "b", "c", "d"])
        for i in range(100):
            key = f"key-{i}"
            assert ring.nodes_for(key, 1) == [ring.node_for(key)]

    def test_zero_or_negative_weight_nodes_are_rejected(self):
        ring = build_ring(["a"])
        import pytest
        with pytest.raises(ValueError):
            ring.add_node("zero", weight=0.0)
        with pytest.raises(ValueError):
            ring.add_node("negative", weight=-2.0)
        assert "zero" not in ring and "negative" not in ring

    def test_replica_sets_are_stable_under_unrelated_add_node(self):
        # Consistent hashing: adding a member may only *insert* itself into
        # a key's preference walk -- it never reorders the existing members.
        # So the new replica set is the old one with at most the new node
        # spliced in (and the tail pushed out), order preserved.
        ring = build_ring(["a", "b", "c", "d"])
        before = {f"key-{i}": ring.nodes_for(f"key-{i}", 3)
                  for i in range(300)}
        ring.add_node("e")
        unchanged = 0
        for key, old in before.items():
            new = ring.nodes_for(key, 3)
            assert set(new) <= set(old) | {"e"}
            survivors = [node for node in new if node != "e"]
            assert survivors == [node for node in old
                                 if node in survivors], (
                f"{key}: relative order changed: {old} -> {new}"
            )
            if new == old:
                unchanged += 1
        # A key's set is untouched iff the new node does not enter its
        # first-3 walk -- roughly (P - r) / P of the keyspace for r=3 of
        # P=5 members.  Assert a conservative floor on that fraction.
        assert unchanged >= 0.2 * len(before)
