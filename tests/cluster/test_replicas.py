"""Replica groups: placement, replication lag, read routing and failover."""

from __future__ import annotations

import pytest

from repro.cluster.deployment import ShardedCluster
from repro.cluster.membership import FAILED
from repro.cluster.replicas import (
    FAILING_OVER,
    NORMAL,
    UNSERVICEABLE,
    QuorumReadPolicy,
    ReadRoutingPolicy,
    ReplicaView,
    ReplicationConfig,
    RoundRobinPolicy,
    make_read_policy,
)
from repro.consistency.history import READ
from repro.consistency.sessions import check_sessions
from repro.core.config import LDSConfig
from repro.core.tags import INITIAL_TAG
from repro.sim.harness import ClusterSimulation
from repro.sim.kernel import GlobalScheduler


@pytest.fixture
def config() -> LDSConfig:
    return LDSConfig(n1=3, n2=4, f1=1, f2=1)


def build_cluster(config, *, r=3, policy="round-robin", pools=4, seed=11,
                  **replication_kwargs):
    cluster = ShardedCluster(
        config, [f"pool-{i}" for i in range(pools)], seed=seed,
        replication=ReplicationConfig(r=r, **replication_kwargs),
        read_policy=policy,
    )
    kernel = GlobalScheduler()
    cluster.attach_kernel(kernel)
    return cluster, kernel


class TestPlacement:
    def test_group_replicas_follow_nodes_for(self, config):
        cluster, _ = build_cluster(config, r=3)
        for i in range(8):
            cluster.write(f"obj-{i}", b"x")
        ring = cluster.membership.ring
        for key, group in cluster.replicas.groups.items():
            assert group.pools() == ring.nodes_for(key, 3)
            assert len(set(group.pools())) == 3

    def test_r_is_capped_at_the_pool_count(self, config):
        cluster, _ = build_cluster(config, r=3, pools=2)
        cluster.write("obj-0", b"x")
        group = cluster.replicas.groups["obj-0"]
        assert len(group.pools()) == 2  # primary + one follower

    def test_r1_disables_the_subsystem_entirely(self, config):
        cluster = ShardedCluster(config, ["pool-0", "pool-1"],
                                 replication=ReplicationConfig(r=1))
        assert cluster.replicas is None
        cluster_none = ShardedCluster(config, ["pool-0", "pool-1"])
        assert cluster_none.replicas is None

    def test_replication_requires_the_global_kernel(self, config):
        cluster = ShardedCluster(
            config, ["pool-0", "pool-1"],
            replication=ReplicationConfig(r=2),
        )
        with pytest.raises(RuntimeError, match="global clock"):
            cluster.write("obj-0", b"x")

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ValueError, match="unknown read routing policy"):
            make_read_policy("fastest")


class TestReplicationLag:
    def test_followers_apply_after_the_configured_lag(self, config):
        cluster, kernel = build_cluster(config, policy="primary",
                                        replication_lag=40.0)
        result = cluster.write("obj-0", b"v1")
        group = cluster.replicas.groups["obj-0"]
        # The write is acknowledged, but no apply event has fired yet.
        for store in group.live_followers():
            assert store.version == (0, INITIAL_TAG)
        committed_at = group.log[-1].committed_at
        cluster.run_until_idle()
        assert kernel.now >= committed_at + 40.0
        for store in group.live_followers():
            assert store.version == (0, result.tag)
            assert store.value == b"v1"
        assert cluster.replicas.stats.records_applied == 2

    def test_replication_traffic_is_charged(self, config):
        cluster, _ = build_cluster(config, policy="primary",
                                   replication_unit_cost=1.0)
        cluster.write("obj-0", b"v1")
        before = cluster.replicas.replication_cost
        cluster.run_until_idle()
        assert cluster.replicas.replication_cost == before + 2.0
        assert cluster.communication_cost >= 2.0

    def test_applies_keep_the_maximum_version(self, config):
        cluster, _ = build_cluster(config, policy="primary")
        cluster.write("obj-0", b"v1")
        cluster.write("obj-0", b"v2")
        cluster.run_until_idle()
        group = cluster.replicas.groups["obj-0"]
        for store in group.live_followers():
            assert store.value == b"v2"
            assert store.version == group.latest_version


class TestReadRouting:
    def test_primary_only_never_touches_followers(self, config):
        cluster, _ = build_cluster(config, policy="primary")
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        for _ in range(4):
            assert cluster.read("obj-0").value == b"v1"
        stats = cluster.router_stats
        assert stats.primary_reads == 4
        assert stats.follower_reads == 0
        assert stats.policy_hit_rate == 1.0

    def test_round_robin_cycles_over_the_group(self, config):
        cluster, _ = build_cluster(config, policy="round-robin")
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        for _ in range(6):
            assert cluster.read("obj-0").value == b"v1"
        group = cluster.replicas.groups["obj-0"]
        stats = cluster.router_stats
        assert stats.primary_reads == 2
        assert stats.follower_reads == 4
        for pool in group.pools():
            assert stats.reads_by_replica[pool] == 2

    def test_nearest_prefers_the_smallest_distance(self, config):
        cluster, _ = build_cluster(config, policy="nearest")
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["obj-0"]
        distances = {group.primary_pool: group.primary_distance}
        for store in group.live_followers():
            distances[store.pool] = store.distance
        expected = min(distances, key=distances.get)
        for _ in range(3):
            assert cluster.read("obj-0").value == b"v1"
        assert cluster.router_stats.reads_by_replica == {expected: 3}

    def test_least_loaded_balances_serve_counts(self, config):
        cluster, _ = build_cluster(config, policy="least-loaded")
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        for _ in range(9):
            assert cluster.read("obj-0").value == b"v1"
        counts = cluster.router_stats.reads_by_replica
        assert sorted(counts.values()) == [3, 3, 3]

    def test_follower_read_carries_the_replica_client_id(self, config):
        cluster, _ = build_cluster(config, policy="round-robin")
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        for _ in range(2):
            cluster.read("obj-0")
        follower_ops = [op for op in cluster.history()
                        if op.client_id.startswith("replica:")]
        assert len(follower_ops) == 1
        assert follower_ops[0].value == b"v1"

    def test_follower_reads_are_excluded_from_atomicity(self, config):
        # A follower read may legitimately return an older version than a
        # concurrent protocol read; it must not enter the per-epoch
        # atomicity check (it is audited by the session checker instead).
        cluster, _ = build_cluster(config, policy="round-robin",
                                   replication_lag=1000.0)
        cluster.write("obj-0", b"v1")
        cluster.write("obj-0", b"v2")
        for _ in range(3):
            cluster.read("obj-0")  # unsessioned: the guard does not apply
        assert cluster.check_atomicity() is None
        stale = [op for op in cluster.history()
                 if op.client_id.startswith("replica:")
                 and op.value != b"v2"]
        assert stale, "with a huge lag some follower read must be stale"


class TestSessionGuard:
    def test_guard_routes_stale_follower_choices_to_the_primary(self, config):
        cluster, kernel = build_cluster(config, policy="round-robin",
                                        replication_lag=500.0)
        write = cluster.router.invoke_write("obj-0", b"v1", session="s")
        cluster.router.flush()
        # Pump only until the write is acknowledged -- running to idle
        # would fast-forward virtual time past the replication lag.
        while cluster.router.result(write) is None:
            kernel.step()
        # Round-robin would now send reads to follower 1 and 2 -- but the
        # session already wrote v1, which no follower has applied: each
        # rejected follower passes the turn to the next candidate, so the
        # second read rejects both lagging followers before landing on
        # the primary and the third rejects one.  The reads start
        # strictly after the write's response so the session order is
        # unambiguous.
        # Spaced out: the fallbacks all land on the same physical reader.
        handles = [cluster.router.invoke_read("obj-0", session="s",
                                              at=kernel.now + 1.0 + 60.0 * i)
                   for i in range(3)]
        cluster.run_until_idle()
        written = cluster.router.result(write)
        for handle in handles:
            assert cluster.router.result(handle).tag == written.tag
        stats = cluster.router_stats
        assert stats.session_fallbacks == 3  # one per rejected choice
        assert stats.follower_reads == 0
        assert stats.policy_hit_rate < 1.0
        report = check_sessions(cluster.history(global_clock=True))
        assert report.ok

    def test_disabling_the_guard_makes_stale_reads_detectable(self, config):
        # The end-to-end injection drill: with the guard off, a genuinely
        # lagging follower serves a session a version below its own write
        # and the auditor must catch it.
        cluster, kernel = build_cluster(config, policy="round-robin",
                                        replication_lag=500.0,
                                        session_guard=False)
        write = cluster.router.invoke_write("obj-0", b"v1", session="s")
        cluster.router.flush()
        while cluster.router.result(write) is None:
            kernel.step()
        handles = [cluster.router.invoke_read("obj-0", session="s",
                                              at=kernel.now + 1.0 + i)
                   for i in range(3)]
        cluster.run_until_idle()
        del handles
        report = check_sessions(cluster.history(global_clock=True))
        assert not report.ok
        assert any(v.guarantee in ("read-your-writes", "monotonic-reads")
                   for v in report.violations)
        # Atomicity at the primary is *not* affected by follower staleness.
        assert cluster.check_atomicity() is None


class TestFailover:
    def _primary_pool(self, cluster, key):
        return cluster.replicas.groups[key].primary_pool

    def test_pool_kill_promotes_a_follower_and_flushes_frozen_ops(self, config):
        cluster, kernel = build_cluster(config, policy="primary",
                                        failover_detection_delay=10.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["k"]
        victim = group.primary_pool
        successor = group.live_followers()[0].pool
        cluster.fail_pool(victim, time=kernel.now)
        assert group.status == FAILING_OVER
        # Primary-bound traffic freezes: the read defers, the write queues.
        read = cluster.router.invoke_read("k", session="r")
        write = cluster.router.invoke_write("k", b"v2", session="w")
        assert cluster.router_stats.failover_deferrals == 1
        cluster.run_until_idle()
        assert group.status == NORMAL
        assert group.epoch == 1
        assert group.primary_pool == successor
        assert cluster.replicas.stats.promotions == 1
        assert cluster.router.result(write).value == b"v2"
        assert cluster.router.result(read) is not None
        assert cluster.check_atomicity() is None
        assert check_sessions(cluster.history(global_clock=True)).ok
        # Redundancy is restored: a replacement follower was provisioned.
        assert len(group.live_followers()) == 2
        assert victim not in group.pools()

    def test_followers_serve_degraded_reads_during_the_window(self, config):
        cluster, kernel = build_cluster(config, policy="round-robin",
                                        failover_detection_delay=50.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["k"]
        cluster.fail_pool(group.primary_pool, time=kernel.now)
        before = cluster.router_stats.follower_reads
        handles = [cluster.router.invoke_read("k") for _ in range(4)]
        cluster.run_until_idle()
        for handle in handles:
            assert cluster.router.result(handle).value == b"v1"
        assert cluster.router_stats.follower_reads == before + 4
        assert group.status == NORMAL  # failover completed afterwards

    def test_catch_up_applies_unreplicated_acked_writes(self, config):
        simulation = ClusterSimulation(
            config, [f"pool-{i}" for i in range(4)], seed=5,
            replication=ReplicationConfig(r=3, replication_lag=1000.0,
                                          failover_detection_delay=5.0,
                                          catch_up_per_record=2.0),
            read_policy="primary",
        )
        for value in (b"v1", b"v2"):
            handle = simulation.invoke_write("k", value, session="s")
            simulation.flush_key("k")
            simulation.run(until=simulation.now + 40.0)
            assert simulation.cluster.router.result(handle) is not None
        group = simulation.replicas.groups["k"]
        victim = group.primary_pool
        # No apply event has fired (lag 1000), yet both writes were acked.
        assert all(s.version == (0, INITIAL_TAG) for s in group.live_followers())
        simulation.cluster.fail_pool(victim, time=simulation.now)
        read = simulation.invoke_read("k", session="s2")
        simulation.run_until_idle()
        assert simulation.replicas.stats.catch_up_records == 2
        assert simulation.cluster.router.result(read).value == b"v2"
        assert simulation.audit().ok

    def test_dead_pool_is_not_falsely_recovered_by_repair(self, config):
        cluster, kernel = build_cluster(config, policy="primary",
                                        failover_detection_delay=10.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        victim = self._primary_pool(cluster, "k")
        cluster.fail_pool(victim, time=kernel.now)
        cluster.run_until_idle()
        for node in cluster.membership.pool_nodes(victim):
            assert node.status == FAILED
        assert not cluster.membership.pool_alive(victim)

    def test_read_in_flight_at_a_killed_follower_never_completes(self, config):
        # Crash semantics match the primary's: a dead pool answers nothing,
        # so a follower read caught mid-flight strands as incomplete
        # instead of being served ~a latency after the pool died.
        cluster, kernel = build_cluster(config, policy="round-robin",
                                        follower_read_latency=50.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["k"]
        # Reads 1-3: primary, follower A, follower B (round robin).
        cluster.read("k")
        h_a = cluster.router.invoke_read("k")
        pool_a = group.live_followers()[0].pool
        cluster.fail_pool(pool_a, time=kernel.now)
        cluster.run_until_idle()
        assert cluster.router.result(h_a) is None
        assert cluster.router.incomplete_operations() >= 1
        stranded = [op for op in cluster.history()
                    if op.client_id.startswith(f"replica:{pool_a}")
                    and not op.is_complete]
        assert len(stranded) == 1
        # The routing counter still records the dispatch.
        assert cluster.router_stats.reads_by_replica[pool_a] == 1

    def test_losing_a_follower_pool_reprovisions_elsewhere(self, config):
        cluster, kernel = build_cluster(config, r=2, policy="round-robin",
                                        provision_delay=5.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["k"]
        follower_pool = group.live_followers()[0].pool
        cluster.fail_pool(follower_pool, time=kernel.now)
        assert group.status == NORMAL  # only a follower died
        cluster.run_until_idle()
        stores = group.live_followers()
        assert len(stores) == 1
        assert stores[0].pool not in (follower_pool, group.primary_pool)
        assert stores[0].value == b"v1"
        assert cluster.replicas.stats.followers_lost == 1
        assert cluster.replicas.stats.followers_provisioned == 1

    def test_pool_recovery_refills_an_unmet_redundancy_deficit(self, config):
        # With no spare pool, a lost follower cannot be replaced; when the
        # dead pool comes back, provisioning must re-trigger on its own.
        cluster, kernel = build_cluster(config, r=3, pools=3,
                                        policy="primary", provision_delay=5.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["k"]
        victim = group.live_followers()[0].pool
        cluster.fail_pool(victim, time=kernel.now)
        cluster.run_until_idle()
        assert len(group.live_followers()) == 1  # no spare pool to use
        for node in cluster.membership.pool_nodes(victim):
            cluster.membership.recover(node.node_id, time=kernel.now)
        cluster.run_until_idle()
        assert len(group.live_followers()) == 2
        assert {s.pool for s in group.live_followers()} >= {victim}

    def test_unserviceable_when_every_replica_pool_is_dead(self, config):
        cluster, kernel = build_cluster(config, r=2, pools=2,
                                        policy="primary",
                                        failover_detection_delay=5.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["k"]
        follower_pool = group.live_followers()[0].pool
        cluster.fail_pool(follower_pool, time=kernel.now)
        cluster.fail_pool(group.primary_pool, time=kernel.now)
        read = cluster.router.invoke_read("k")
        cluster.run_until_idle()
        assert group.status == UNSERVICEABLE
        assert cluster.router.result(read) is None
        assert cluster.router.incomplete_operations() >= 1

    def test_successor_pool_dying_during_catch_up_repromotes(self, config):
        # The successor is chosen at detection time but only seated after
        # the catch-up delay; if its own pool dies inside that window the
        # promotion must fall through to the next live follower instead of
        # seating a primary on a dead pool.
        simulation = ClusterSimulation(
            config, [f"pool-{i}" for i in range(4)], seed=5,
            replication=ReplicationConfig(r=3, replication_lag=1000.0,
                                          failover_detection_delay=5.0,
                                          catch_up_per_record=5.0),
            read_policy="primary",
        )
        for value in (b"v1", b"v2"):
            handle = simulation.invoke_write("k", value, session="s")
            simulation.flush_key("k")
            simulation.run(until=simulation.now + 40.0)
            assert simulation.cluster.router.result(handle) is not None
        group = simulation.replicas.groups["k"]
        first, second = [s.pool for s in group.live_followers()]
        kill_at = simulation.now
        simulation.cluster.fail_pool(group.primary_pool, time=kill_at)
        # Promotion starts at kill+5 and seats at kill+15 (2 records x 5);
        # the chosen successor's pool dies in between.
        simulation.run(until=kill_at + 8.0)
        simulation.cluster.fail_pool(first, time=simulation.now)
        write = simulation.invoke_write("k", b"v3", session="s")
        simulation.run_until_idle()
        assert group.status == NORMAL
        assert group.primary_pool == second
        assert simulation.cluster.router.result(write).value == b"v3"
        assert simulation.audit().ok

    def test_provision_target_dying_in_the_delay_retries_elsewhere(self, config):
        cluster, kernel = build_cluster(config, r=2, policy="primary",
                                        provision_delay=20.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["k"]
        follower_pool = group.live_followers()[0].pool
        # The replacement target the coordinator will pick first.
        preference = cluster.membership.ring.nodes_for("k", 4)
        cluster.fail_pool(follower_pool, time=kernel.now)
        target = next(pool for pool in preference
                      if pool not in (group.primary_pool, follower_pool))
        # Kill the chosen target before the provisioning delay elapses.
        cluster.fail_pool(target, time=kernel.now)
        cluster.run_until_idle()
        stores = group.live_followers()
        assert len(stores) == 1, "the group must not stay under-replicated"
        assert stores[0].pool not in (follower_pool, target,
                                      group.primary_pool)

    def test_lazy_group_does_not_seed_followers_on_dead_pools(self, config):
        cluster, kernel = build_cluster(config, r=3, policy="round-robin",
                                        provision_delay=5.0)
        # Keep pool-0 populated so the kill sticks, then find a fresh key
        # whose ring replica set includes pool-0 as a *follower*.
        anchor = next(f"seed-{i}" for i in range(64)
                      if cluster.membership.pool_for(f"seed-{i}") == "pool-0")
        cluster.write(anchor, b"x")
        cluster.run_until_idle()
        ring = cluster.membership.ring
        key = next(f"lazy-{i}" for i in range(256)
                   if "pool-0" in ring.nodes_for(f"lazy-{i}", 3)[1:])
        cluster.fail_pool("pool-0", time=kernel.now)
        cluster.write(key, b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups[key]
        assert "pool-0" not in group.pools()
        # Redundancy was filled from live pools instead.
        assert len(group.live_followers()) == 2
        for _ in range(6):
            cluster.read(key)
        assert "pool-0" not in {
            pool for pool in cluster.router_stats.reads_by_replica
            if pool in group.pools()
        } or cluster.router_stats.reads_by_replica.get("pool-0", 0) == 0

    def test_rebalance_skips_keys_owned_by_the_failover_path(self, config):
        # add_pool right after a pool kill: migrating a dead-pool primary
        # would drain it with a copy read that can never complete; those
        # keys belong to the failover path and must be skipped.
        cluster, kernel = build_cluster(config, r=3, policy="primary",
                                        failover_detection_delay=10.0)
        for i in range(8):
            cluster.write(f"obj-{i}", f"v{i}".encode())
        cluster.run_until_idle()
        victims = [k for k, g in cluster.replicas.groups.items()
                   if g.primary_pool == "pool-0"]
        assert victims
        cluster.fail_pool("pool-0", time=kernel.now)
        cluster.add_pool("pool-9", time=kernel.now)  # must not raise
        cluster.run_until_idle()
        for key in victims:
            group = cluster.replicas.groups[key]
            assert group.status == NORMAL
            assert group.primary_pool != "pool-0"
        for i in range(8):
            assert cluster.read(f"obj-{i}").value == f"v{i}".encode()
        cluster.run_until_idle()
        assert cluster.check_atomicity() is None
        assert check_sessions(cluster.history(global_clock=True)).ok

    def test_rebalance_after_failover_avoids_the_dead_pool(self, config):
        # The ring still lists a killed pool (failures do not change
        # placement); planning against the raw ring walk would migrate a
        # promoted primary straight back onto it.  Desired placements must
        # be liveness-filtered.
        cluster, kernel = build_cluster(config, r=2, pools=3,
                                        policy="primary",
                                        failover_detection_delay=5.0,
                                        provision_delay=5.0)
        for i in range(8):
            cluster.write(f"obj-{i}", f"v{i}".encode())
        cluster.run_until_idle()
        cluster.fail_pool("pool-1", time=kernel.now)
        cluster.run_until_idle()  # failovers complete, groups NORMAL again
        cluster.add_pool("pool-3", time=kernel.now)
        cluster.run_until_idle()
        for key, group in cluster.replicas.groups.items():
            assert "pool-1" not in group.pools(), (key, group.pools())
            assert group.status == NORMAL
        for i in range(8):
            assert cluster.read(f"obj-{i}").value == f"v{i}".encode()
        cluster.run_until_idle()
        assert cluster.check_atomicity() is None

    def test_multi_pool_deficit_is_fully_reprovisioned(self, config):
        # A group missing two followers (two dead pools in its ring set)
        # must fill the whole deficit, not just one slot per trigger.
        cluster, kernel = build_cluster(config, r=4, pools=6,
                                        policy="primary",
                                        provision_delay=5.0)
        ring = cluster.membership.ring
        dead = {"pool-4", "pool-5"}
        key = next(
            f"multi-{i}" for i in range(512)
            if ring.nodes_for(f"multi-{i}", 4)[0] not in dead
            and len(set(ring.nodes_for(f"multi-{i}", 4)[1:]) & dead) >= 2
        )
        for pool in sorted(dead):
            cluster.fail_pool(pool, time=kernel.now)
        cluster.write(key, b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups[key]
        assert group.status == NORMAL
        assert len(group.live_followers()) == 3, group.pools()
        assert not set(group.pools()) & dead

    def test_remove_pool_during_detection_does_not_strand_groups(self, config):
        # Draining the dead pool out of the ring while its groups are
        # still failing over must not drop the caught-up follower the
        # promotion needs (the rebalance plan assumed a primary move that
        # the frozen-key guard skipped).
        cluster, kernel = build_cluster(config, r=2, pools=3,
                                        policy="primary",
                                        failover_detection_delay=30.0,
                                        provision_delay=25.0)
        for i in range(8):
            cluster.write(f"obj-{i}", f"v{i}".encode())
        cluster.run_until_idle()
        victims = [k for k, g in cluster.replicas.groups.items()
                   if g.primary_pool == "pool-0"]
        assert victims
        cluster.fail_pool("pool-0", time=kernel.now)
        cluster.remove_pool("pool-0", time=kernel.now)
        cluster.run_until_idle()
        for key in victims:
            group = cluster.replicas.groups[key]
            assert group.status == NORMAL, f"{key} stranded: {group.status}"
            assert group.primary_pool != "pool-0"
        for i in range(8):
            assert cluster.read(f"obj-{i}").value == f"v{i}".encode()

    def test_degraded_reads_stay_stale_until_catch_up_completes(self, config):
        # Catch-up is counted at detection time but applied at seat time:
        # a degraded read inside the window must still see the follower's
        # genuinely stale state.
        simulation = ClusterSimulation(
            config, [f"pool-{i}" for i in range(4)], seed=5,
            replication=ReplicationConfig(r=3, replication_lag=1000.0,
                                          failover_detection_delay=5.0,
                                          catch_up_per_record=10.0),
            read_policy="round-robin",
        )
        for value in (b"v1", b"v2"):
            handle = simulation.invoke_write("k", value, session="s")
            simulation.flush_key("k")
            simulation.run(until=simulation.now + 40.0)
            assert simulation.cluster.router.result(handle) is not None
        group = simulation.replicas.groups["k"]
        kill_at = simulation.now
        simulation.cluster.fail_pool(group.primary_pool, time=kill_at)
        # Promotion starts at kill+5 and seats at kill+25 (2 records x 10);
        # a fresh-session read in between is served by a follower that has
        # applied nothing yet.
        degraded = simulation.invoke_read("k", session="fresh")
        simulation.run(until=kill_at + 15.0)
        result = simulation.cluster.router.result(degraded)
        assert result is not None
        assert result.tag == INITIAL_TAG, "catch-up must not leak early"
        simulation.run_until_idle()
        assert simulation.replicas.stats.catch_up_records == 2
        assert simulation.audit().ok

    def test_lazy_shard_on_a_dead_pool_fails_over_immediately(self, config):
        cluster, kernel = build_cluster(config, policy="primary",
                                        failover_detection_delay=5.0)
        # A sacrificial shard keeps pool-0 populated, then the pool dies;
        # a key touched for the *first time* afterwards must not start its
        # life frozen on the dead pool.
        keys = [f"fresh-{i}" for i in range(64)
                if cluster.membership.pool_for(f"fresh-{i}") == "pool-0"]
        sacrificial, key = keys[0], keys[1]
        cluster.write(sacrificial, b"seed")
        cluster.run_until_idle()
        cluster.fail_pool("pool-0", time=kernel.now)
        write = cluster.router.invoke_write(key, b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups[key]
        assert group.status == NORMAL
        assert group.primary_pool != "pool-0"
        assert cluster.router.result(write).value == b"v1"


class TestReplicaAwareRebalance:
    def test_join_realigns_replica_sets_with_the_ring(self, config):
        cluster, _ = build_cluster(config, r=2, pools=3,
                                   policy="round-robin", provision_delay=2.0)
        for i in range(10):
            cluster.write(f"obj-{i}", b"x")
        cluster.run_until_idle()
        plan = cluster.add_pool("pool-3", time=0.0)
        assert plan.moves or plan.follower_changes
        cluster.run_until_idle()
        ring = cluster.membership.ring
        for key, group in cluster.replicas.groups.items():
            assert group.pools() == ring.nodes_for(key, 2)
        assert cluster.check_atomicity() is None

    def test_primary_migration_bumps_the_replicated_epoch(self, config):
        cluster, _ = build_cluster(config, r=2, pools=3,
                                   policy="primary", provision_delay=2.0)
        for i in range(10):
            cluster.write(f"obj-{i}", b"x")
        cluster.run_until_idle()
        # Removing a pool migrates its primaries; their groups must adopt
        # the new epoch and replicate the carried snapshot.
        moved = [key for key, group in cluster.replicas.groups.items()
                 if group.primary_pool == "pool-0"]
        assert moved
        cluster.remove_pool("pool-0", time=0.0)
        cluster.run_until_idle()
        for key in moved:
            group = cluster.replicas.groups[key]
            assert group.primary_pool != "pool-0"
            assert group.epoch >= 1
            for store in group.live_followers():
                assert store.pool != "pool-0"
                assert store.version[0] == group.epoch
        assert cluster.check_atomicity() is None


class TestQuorumReads:
    def test_quorum_merge_returns_the_max_version(self, config):
        cluster, _ = build_cluster(config, policy="quorum",
                                   replication_lag=500.0, read_quorum=2)
        cluster.write("obj-0", b"v1")
        result = cluster.write("obj-0", b"v2")
        # The first quorum window is [primary, follower-1]: no follower has
        # applied anything, so the primary's committed log head must win.
        read = cluster.read("obj-0")
        assert read.value == b"v2"
        assert read.tag == result.tag
        stats = cluster.router_stats
        assert stats.quorum_reads == 1
        assert stats.quorum_depths == {2: 1}

    def test_read_repair_catches_observed_stores_up_immediately(self, config):
        cluster, kernel = build_cluster(config, policy="quorum",
                                        replication_lag=900.0, read_quorum=2)
        cluster.write("obj-0", b"v1")
        group = cluster.replicas.groups["obj-0"]
        before = cluster.replicas.replication_cost
        cluster.read("obj-0")
        # The merge saw a stale follower and repaired it from the log now,
        # ~900 time units before the lag fan-out would have.
        assert kernel.now < 900.0
        repaired = [s for s in group.live_followers()
                    if s.version == group.latest_version]
        assert len(repaired) == 1
        assert repaired[0].value == b"v1"
        stats = cluster.router_stats
        assert stats.read_repairs == 1
        assert cluster.replicas.stats.read_repair_records == 1
        assert cluster.replicas.replication_cost == before + 1.0

    def test_unobserved_followers_are_not_repaired(self, config):
        # Only quorum members are caught up; anti-entropy between
        # followers that never met in a quorum is explicitly out of scope.
        cluster, _ = build_cluster(config, policy="quorum",
                                   replication_lag=900.0, read_quorum=2)
        cluster.write("obj-0", b"v1")
        cluster.read("obj-0")
        group = cluster.replicas.groups["obj-0"]
        stale = [s for s in group.live_followers()
                 if s.version == (0, INITIAL_TAG)]
        assert len(stale) == 1

    def test_disabling_read_repair_leaves_catch_up_to_the_lag(self, config):
        cluster, kernel = build_cluster(config, policy="quorum",
                                        replication_lag=900.0, read_quorum=2,
                                        read_repair=False)
        cluster.write("obj-0", b"v1")
        cluster.read("obj-0")
        group = cluster.replicas.groups["obj-0"]
        assert kernel.now < 900.0
        assert all(s.version == (0, INITIAL_TAG)
                   for s in group.live_followers())
        assert cluster.router_stats.read_repairs == 0
        cluster.run_until_idle()  # the lag fan-out eventually applies
        assert all(s.value == b"v1" for s in group.live_followers())

    def test_follower_only_window_falls_back_on_the_session_floor(self, config):
        cluster, kernel = build_cluster(config, policy="quorum",
                                        replication_lag=900.0, read_quorum=2,
                                        read_repair=False)
        write = cluster.router.invoke_write("obj-0", b"v1", session="s")
        cluster.router.flush()
        while cluster.router.result(write) is None:
            kernel.step()
        written = cluster.router.result(write)
        # Windows rotate [P,F1], [F1,F2], [F2,P]: the second sessioned read
        # merges a follower-only quorum below the session's floor and must
        # fall back to a protocol read at the primary.
        handles = [cluster.router.invoke_read("obj-0", session="s",
                                              at=kernel.now + 1.0 + 60.0 * i)
                   for i in range(2)]
        cluster.run_until_idle()
        for handle in handles:
            assert cluster.router.result(handle).tag == written.tag
        stats = cluster.router_stats
        assert stats.session_fallbacks == 1
        assert cluster.router.incomplete_operations() == 0
        assert check_sessions(cluster.history(global_clock=True)).ok

    def test_guardless_stale_quorum_is_caught_by_the_auditor(self, config):
        cluster, kernel = build_cluster(config, policy="quorum",
                                        replication_lag=900.0, read_quorum=1,
                                        read_repair=False,
                                        session_guard=False)
        write = cluster.router.invoke_write("obj-0", b"v1", session="s")
        cluster.router.flush()
        while cluster.router.result(write) is None:
            kernel.step()
        handles = [cluster.router.invoke_read("obj-0", session="s",
                                              at=kernel.now + 1.0 + 60.0 * i)
                   for i in range(2)]
        cluster.run_until_idle()
        del handles
        report = check_sessions(cluster.history(global_clock=True))
        assert not report.ok
        assert any(v.guarantee in ("read-your-writes", "monotonic-reads")
                   for v in report.violations)
        assert cluster.check_atomicity() is None

    def test_quorum_degrades_when_a_member_dies_mid_flight(self, config):
        cluster, kernel = build_cluster(config, policy="quorum",
                                        read_quorum=2,
                                        follower_read_latency=50.0)
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["obj-0"]
        handle = cluster.router.invoke_read("obj-0")
        # The window was [primary, follower-1]; kill the follower's pool
        # while its leg is still in flight.
        victim = group.live_followers()[0].pool
        cluster.fail_pool(victim, time=kernel.now)
        cluster.run_until_idle()
        result = cluster.router.result(handle)
        assert result is not None, "the quorum read must degrade, not hang"
        assert result.value == b"v1"
        assert cluster.router_stats.quorum_depths.get(1) == 1
        assert cluster.replicas.incomplete_reads() == 0

    def test_quorum_with_every_member_dead_strands_truthfully(self, config):
        cluster, kernel = build_cluster(config, r=2, pools=2, policy="quorum",
                                        read_quorum=2,
                                        follower_read_latency=50.0,
                                        failover_detection_delay=5.0)
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["obj-0"]
        handle = cluster.router.invoke_read("obj-0")
        follower_pool = group.live_followers()[0].pool
        cluster.fail_pool(follower_pool, time=kernel.now)
        cluster.fail_pool(group.primary_pool, time=kernel.now)
        cluster.run_until_idle()  # must terminate: the merge resolves empty
        assert group.status == UNSERVICEABLE
        assert cluster.router.result(handle) is None
        assert cluster.replicas.incomplete_reads() == 1
        stranded = [op for op in cluster.history()
                    if op.client_id.startswith("replica:quorum")
                    and not op.is_complete]
        assert len(stranded) == 1

    def test_read_quorum_requires_the_quorum_policy(self, config):
        with pytest.raises(ValueError, match="read_quorum"):
            build_cluster(config, policy="round-robin", read_quorum=2)

    def test_read_quorum_must_stay_within_r(self):
        with pytest.raises(ValueError, match="read_quorum"):
            ReplicationConfig(r=3, read_quorum=4)
        with pytest.raises(ValueError, match="read_quorum"):
            ReplicationConfig(r=3, read_quorum=0)

    def test_read_quorum_defaults_to_a_majority(self, config):
        cluster, _ = build_cluster(config, r=3, policy="quorum")
        assert cluster.replicas.read_quorum == 2


class TestWriteForwarding:
    def test_via_follower_forwards_to_the_primary(self, config):
        cluster, kernel = build_cluster(config, policy="primary",
                                        forward_latency=5.0)
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["obj-0"]
        follower_pool = group.live_followers()[0].pool
        started = kernel.now
        handle = cluster.router.invoke_write("obj-0", b"v2",
                                             via=follower_pool)
        assert cluster.router.incomplete_operations() >= 1  # hop in flight
        cluster.run_until_idle()
        result = cluster.router.result(handle)
        assert result.value == b"v2"
        # The forwarding hop is charged on the kernel clock before the
        # primary even sees the write.
        assert result.invoked_at >= started + 5.0 * 0.5  # distance >= 0.5
        assert cluster.router_stats.forwarded_writes == 1
        assert cluster.read("obj-0").value == b"v2"

    def test_via_primary_queues_directly(self, config):
        cluster, _ = build_cluster(config, policy="primary")
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["obj-0"]
        handle = cluster.router.invoke_write("obj-0", b"v2",
                                             via=group.primary_pool)
        cluster.run_until_idle()
        assert cluster.router.result(handle).value == b"v2"
        assert cluster.router_stats.forwarded_writes == 0

    def test_nearest_ingress_forwards_follower_arrivals(self, config):
        cluster, _ = build_cluster(config, policy="primary",
                                   write_ingress="nearest")
        # Across enough keys, some nearest replica is a follower.
        for i in range(8):
            cluster.write(f"obj-{i}", b"x")
        cluster.run_until_idle()
        stats = cluster.router_stats
        assert stats.forwarded_writes > 0
        for i in range(8):
            assert cluster.read(f"obj-{i}").value == b"x"
        assert cluster.check_atomicity() is None

    def test_forwarded_write_rides_the_freeze_into_the_new_epoch(self, config):
        cluster, kernel = build_cluster(config, policy="primary",
                                        failover_detection_delay=20.0,
                                        forward_latency=2.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["k"]
        follower_pool = group.live_followers()[0].pool
        cluster.fail_pool(group.primary_pool, time=kernel.now)
        assert group.status == FAILING_OVER
        handle = cluster.router.invoke_write("k", b"v2", via=follower_pool,
                                             session="w")
        cluster.run_until_idle()
        assert group.status == NORMAL
        assert group.epoch == 1
        result = cluster.router.result(handle)
        assert result is not None and result.value == b"v2"
        assert cluster.router_stats.forwarded_writes == 1
        assert cluster.read("k").value == b"v2"
        assert cluster.check_atomicity() is None
        assert check_sessions(cluster.history(global_clock=True)).ok


class _StickyPolicy(ReadRoutingPolicy):
    """Always returns its first follower choice -- even after the pool
    retires, modelling a policy with a stale replica cache."""

    name = "sticky"

    def __init__(self) -> None:
        self.pinned = None

    def choose(self, key, candidates):
        if self.pinned is None:
            followers = [v for v in candidates if not v.is_primary]
            self.pinned = followers[0].pool if followers else None
        return self.pinned


class TestRoutingFallbackAccounting:
    def test_late_arrivals_are_clamped_on_both_read_paths(self, config):
        # A nominal time already in the past must dispatch at the clock on
        # the primary path exactly like on the follower path -- and must
        # not ratchet the whole shard batch forward with it.
        cluster, kernel = build_cluster(config, policy="primary")
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        t = kernel.now
        late = cluster.router.invoke_read("obj-0", at=t - 100.0)
        future = cluster.router.invoke_read("obj-0", at=t + 200.0)
        cluster.run_until_idle()
        assert cluster.router.result(late) is not None
        assert cluster.router.result(future) is not None
        history = cluster.history(global_clock=True)
        invoked = sorted(op.invoked_at for op in history if op.kind == READ)
        assert len(invoked) == 2
        # The late read is clamped to ~t; the future read keeps its
        # nominal time instead of being dragged 100 units forward by the
        # batch ratchet the raw past timestamp used to trigger.
        assert invoked[0] == pytest.approx(t)
        assert invoked[1] == pytest.approx(t + 200.0)

    def test_retired_choice_falls_back_visibly(self, config):
        policy = _StickyPolicy()
        cluster, kernel = build_cluster(config, r=3, policy=policy,
                                        provision_delay=500.0)
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["obj-0"]
        assert cluster.read("obj-0").value == b"v1"  # pins a follower
        pinned = policy.pinned
        assert pinned is not None
        cluster.fail_pool(pinned, time=kernel.now)
        assert group.follower(pinned) is None
        # The sticky policy still names the dead pool: the read must fall
        # back to the primary and be counted as a *retired* fallback,
        # distinct from the session-guard counter.
        assert cluster.read("obj-0").value == b"v1"
        stats = cluster.router_stats
        assert stats.retired_fallbacks == 1
        assert stats.session_fallbacks == 0
        assert stats.primary_reads == 1

    def test_both_fallback_kinds_are_counted_apart(self, config):
        # Session-guard fallbacks keep their own counter next to the new
        # retired-fallback counter.
        cluster, kernel = build_cluster(config, policy="round-robin",
                                        replication_lag=900.0)
        write = cluster.router.invoke_write("obj-0", b"v1", session="s")
        cluster.router.flush()
        while cluster.router.result(write) is None:
            kernel.step()
        handles = [cluster.router.invoke_read("obj-0", session="s",
                                              at=kernel.now + 1.0 + 60.0 * i)
                   for i in range(3)]
        cluster.run_until_idle()
        del handles
        stats = cluster.router_stats
        assert stats.session_fallbacks >= 1
        assert stats.retired_fallbacks == 0

    def test_round_robin_gives_a_rejected_turn_back(self):
        policy = RoundRobinPolicy()
        views = [ReplicaView(pool=f"pool-{i}", is_primary=(i == 0),
                             distance=1.0, reads_in_flight=0,
                             reads_served=0, order=i) for i in range(3)]
        assert policy.choose("k", views) == "pool-0"
        choice = policy.choose("k", views)
        assert choice == "pool-1"
        policy.rejected("k", choice)
        # The lagging replica keeps its place in the cycle.
        assert policy.choose("k", views) == "pool-1"
        assert policy.choose("k", views) == "pool-2"

    def test_round_robin_cycle_stays_fair_across_guard_rejections(self, config):
        cluster, kernel = build_cluster(config, policy="round-robin",
                                        replication_lag=200.0)
        write = cluster.router.invoke_write("obj-0", b"v1", session="s")
        cluster.router.flush()
        while cluster.router.result(write) is None:
            kernel.step()
        # Both follower turns are rejected by the guard while the lag
        # holds (and re-offered, not consumed): reads 1-3 all hit the
        # primary, with the cycle parked on the first follower.
        stalled = [cluster.router.invoke_read("obj-0", session="s",
                                              at=kernel.now + 1.0 + 60.0 * i)
                   for i in range(3)]
        cluster.run_until_idle()  # runs past the lag: followers catch up
        for handle in stalled:
            assert cluster.router.result(handle) is not None
        fallbacks = cluster.router_stats.session_fallbacks
        assert fallbacks >= 2
        # Post-catch-up, the cycle resumes exactly where it was parked and
        # serves every replica its fair share: 3 reads -> one each.
        group = cluster.replicas.groups["obj-0"]
        before = dict(cluster.router_stats.reads_by_replica)
        for i in range(3):
            assert cluster.read("obj-0", reader=0).value == b"v1"
        after = cluster.router_stats.reads_by_replica
        gained = {pool: after.get(pool, 0) - before.get(pool, 0)
                  for pool in group.pools()}
        assert sorted(gained.values()) == [1, 1, 1], gained
        assert cluster.router_stats.session_fallbacks == fallbacks


class TestStrandedReadAccounting:
    def test_stranded_follower_read_is_reported_and_idle_detection_holds(
            self, config):
        cluster, kernel = build_cluster(config, policy="round-robin",
                                        follower_read_latency=50.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["k"]
        cluster.read("k")  # round robin: primary first
        handle = cluster.router.invoke_read("k")  # then follower A
        pool_a = group.live_followers()[0].pool
        cluster.fail_pool(pool_a, time=kernel.now)
        # The kill must not wedge the kernel: the pump drains everything
        # else and goes idle with the read still pending.
        cluster.run_until_idle()
        assert cluster.replicas.incomplete_reads() == 1
        assert cluster.router.result(handle) is None
        assert cluster.router.incomplete_operations() >= 1
        # Idle detection is stable: pumping again is an immediate no-op.
        now = kernel.now
        cluster.run_until_idle()
        assert kernel.now == now
        assert cluster.replicas.incomplete_reads() == 1


class TestReviewRegressions:
    def test_quorum_fallback_counts_the_logical_read_once(self, config):
        # A quorum read whose merge falls back to the primary must not
        # inflate routed_reads by landing in both quorum_reads and
        # primary_reads.
        cluster, kernel = build_cluster(config, policy="quorum",
                                        replication_lag=900.0, read_quorum=2,
                                        read_repair=False)
        write = cluster.router.invoke_write("obj-0", b"v1", session="s")
        cluster.router.flush()
        while cluster.router.result(write) is None:
            kernel.step()
        handles = [cluster.router.invoke_read("obj-0", session="s",
                                              at=kernel.now + 1.0 + 60.0 * i)
                   for i in range(3)]
        cluster.run_until_idle()
        for handle in handles:
            assert cluster.router.result(handle) is not None
        stats = cluster.router_stats
        assert stats.session_fallbacks == 1
        assert stats.quorum_reads == 3
        assert stats.primary_reads == 0  # the fallback stays a quorum read
        assert stats.routed_reads == 3

    def test_via_must_name_a_group_member(self, config):
        cluster, _ = build_cluster(config, policy="primary")
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        with pytest.raises(ValueError, match="no replica"):
            cluster.router.invoke_write("obj-0", b"v2", via="pool-nope")
        assert cluster.router_stats.forwarded_writes == 0

    def test_via_requires_replica_groups(self, config):
        cluster = ShardedCluster(config, ["pool-0", "pool-1"])
        with pytest.raises(ValueError, match="replica groups"):
            cluster.invoke_write("obj-0", b"v1", via="pool-1")

    def test_primary_leg_survives_a_benign_mid_flight_migration(self, config):
        # A rebalance moving the primary while a quorum leg is in flight
        # is not a crash: the queried pool is alive and its answer (the
        # committed head, which only grows) must stand instead of the
        # read stranding incomplete.
        cluster, _ = build_cluster(config, r=2, pools=3, policy="quorum",
                                   read_quorum=1,
                                   follower_read_latency=50.0)
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["obj-0"]
        handle = cluster.router.invoke_read("obj-0")  # leg at the primary
        old_primary = group.primary_pool
        cluster.remove_pool(old_primary, time=0.0)  # migrates mid-flight
        assert group.primary_pool != old_primary
        cluster.run_until_idle()
        result = cluster.router.result(handle)
        assert result is not None, "a migration must not strand the leg"
        assert result.value == b"v1"
        assert cluster.replicas.incomplete_reads() == 0

    def test_primary_ingress_write_clamps_late_nominal_times(self, config):
        # A coordinator-routed write arriving at the primary with a past
        # nominal time is clamped exactly like the forwarded path, so a
        # co-batched future operation keeps its nominal timestamp.
        cluster, kernel = build_cluster(config, policy="primary")
        cluster.write("obj-0", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["obj-0"]
        t = kernel.now
        late = cluster.router.invoke_write("obj-0", b"v2",
                                           via=group.primary_pool,
                                           at=t - 100.0)
        future = cluster.router.invoke_read("obj-0", at=t + 200.0)
        cluster.run_until_idle()
        assert cluster.router.result(late).value == b"v2"
        history = cluster.history(global_clock=True)
        read_at = [op.invoked_at for op in history if op.kind == READ]
        assert read_at == [pytest.approx(t + 200.0)]
        del future

    def test_crashed_then_recovered_primary_leg_stays_silent(self, config):
        # A primary pool that dies mid-leg and recovers before the leg's
        # completion event fires must not fabricate an answer: recovery
        # cannot un-lose the in-flight request.
        cluster, kernel = build_cluster(config, policy="quorum",
                                        read_quorum=1,
                                        follower_read_latency=50.0,
                                        failover_detection_delay=5.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["k"]
        handle = cluster.router.invoke_read("k")  # window = [primary]
        victim = group.primary_pool
        cluster.fail_pool(victim, time=kernel.now)
        for node in cluster.membership.pool_nodes(victim):
            cluster.membership.recover(node.node_id, time=kernel.now)
        cluster.run_until_idle()
        assert cluster.router.result(handle) is None
        assert cluster.replicas.incomplete_reads() == 1
        stranded = [op for op in cluster.history()
                    if op.client_id.startswith("replica:quorum")
                    and not op.is_complete]
        assert len(stranded) == 1

    def test_gracefully_dropped_follower_leg_still_answers(self, config):
        # A rebalance retiring a follower mid-flight is not a crash: the
        # store served until the drop and its in-flight answers stand, on
        # both the single-store path and the quorum leg path.
        for policy, quorum in (("round-robin", None), ("quorum", 1)):
            kwargs = {"follower_read_latency": 50.0}
            if quorum is not None:
                kwargs["read_quorum"] = quorum
            cluster, _ = build_cluster(config, r=2, pools=3, policy=policy,
                                       **kwargs)
            cluster.write("obj-0", b"v1")
            cluster.run_until_idle()
            group = cluster.replicas.groups["obj-0"]
            cluster.read("obj-0")  # tick the cycle onto the follower
            handle = cluster.router.invoke_read("obj-0")
            follower_pool = group.live_followers()[0].pool
            cluster.remove_pool(follower_pool, time=0.0)  # graceful
            cluster.run_until_idle()
            result = cluster.router.result(handle)
            assert result is not None, (policy, "graceful drop must answer")
            assert result.value == b"v1"
            assert cluster.replicas.incomplete_reads() == 0

    def test_a_lagging_follower_does_not_starve_its_healthy_peer(self, config):
        # The reviewer's starvation case: one follower lags the session
        # floor, the other is current.  Each rejected turn must pass to
        # the next candidate, so the healthy follower keeps serving
        # instead of every read collapsing onto the primary.
        cluster, kernel = build_cluster(config, policy="round-robin",
                                        replication_lag=10_000.0)
        write = cluster.router.invoke_write("obj-0", b"v1", session="s")
        cluster.router.flush()
        while cluster.router.result(write) is None:
            kernel.step()
        group = cluster.replicas.groups["obj-0"]
        lagging, healthy = group.live_followers()
        healthy.apply(group.log[-1])  # caught up; the other stays stale
        handles = [cluster.router.invoke_read("obj-0", session="s",
                                              at=kernel.now + 1.0 + 60.0 * i)
                   for i in range(6)]
        cluster.run_until_idle()
        for handle in handles:
            assert cluster.router.result(handle) is not None
        assert healthy.reads_served > 0, "healthy follower was starved"
        assert lagging.reads_served == 0
        stats = cluster.router_stats
        assert stats.follower_reads == healthy.reads_served
        assert check_sessions(cluster.history(global_clock=True)).ok

    def test_the_quorum_pool_name_is_reserved(self, config):
        with pytest.raises(ValueError, match="reserved"):
            ShardedCluster(config, ["quorum", "pool-1"],
                           replication=ReplicationConfig(r=2))
        with pytest.raises(ValueError, match="reserved"):
            ShardedCluster(config, ["quorum/east", "pool-1"],
                           replication=ReplicationConfig(r=2))
        cluster, _ = build_cluster(config)
        with pytest.raises(ValueError, match="reserved"):
            cluster.add_pool("quorum")
        # Without replica groups there is no quorum client-id namespace
        # to collide with; the name stays usable.
        ShardedCluster(config, ["quorum", "pool-1"])

    def test_primary_ingress_during_freeze_is_not_a_forward(self, config):
        # A write arriving *at the primary pool* never pays a forwarding
        # hop -- even mid-failover, where it queues at the frozen slot and
        # flushes into the promoted epoch.
        cluster, kernel = build_cluster(config, policy="primary",
                                        failover_detection_delay=20.0)
        cluster.write("k", b"v1")
        cluster.run_until_idle()
        group = cluster.replicas.groups["k"]
        victim = group.primary_pool
        cluster.fail_pool(victim, time=kernel.now)
        assert group.status == FAILING_OVER
        handle = cluster.router.invoke_write("k", b"v2", via=victim,
                                             session="w")
        cluster.run_until_idle()
        assert group.status == NORMAL
        assert cluster.router.result(handle).value == b"v2"
        assert cluster.router_stats.forwarded_writes == 0
