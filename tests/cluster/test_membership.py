"""Membership transitions, events and rebalancing-plan generation."""

from __future__ import annotations

import pytest

from repro.cluster.membership import (
    ALIVE, FAILED, JOIN, LEAVE, FAIL, RECOVER,
    ClusterNode, Membership,
)
from repro.cluster.placement import diff_placements

KEYS = [f"obj-{i}" for i in range(200)]


def test_for_pools_builds_full_node_sets():
    membership = Membership.for_pools(["pool-0", "pool-1"], n1=3, n2=4)
    assert membership.pools == ["pool-0", "pool-1"]
    nodes = membership.pool_nodes("pool-0")
    assert len(nodes) == 7
    assert sum(1 for n in nodes if n.role == "l1") == 3
    assert sum(1 for n in nodes if n.role == "l2") == 4
    assert all(n.status == ALIVE for n in nodes)


def test_join_and_leave_change_the_ring_only_at_pool_boundaries():
    membership = Membership()
    first = membership.join(ClusterNode(pool="pool-0", role="l1", index=0))
    assert first.ring_changed
    second = membership.join(ClusterNode(pool="pool-0", role="l2", index=0))
    assert not second.ring_changed

    partial_leave = membership.leave("pool-0/l1-0")
    assert not partial_leave.ring_changed
    final_leave = membership.leave("pool-0/l2-0")
    assert final_leave.ring_changed
    assert membership.pools == []


def test_fail_and_recover_do_not_change_placement():
    membership = Membership.for_pools(["pool-0", "pool-1"], n1=3, n2=4)
    before = membership.placement(KEYS)
    event = membership.fail("pool-0/l2-1", time=5.0)
    assert event.kind == FAIL and not event.ring_changed
    assert membership.node("pool-0/l2-1").status == FAILED
    assert membership.failed_nodes("pool-0")
    assert membership.placement(KEYS) == before
    membership.recover("pool-0/l2-1", time=9.0)
    assert membership.node("pool-0/l2-1").status == ALIVE


def test_events_are_delivered_to_subscribers_in_order():
    membership = Membership.for_pools(["pool-0"], n1=1, n2=1)
    seen = []
    membership.subscribe(lambda event: seen.append((event.kind, event.node.node_id)))
    membership.fail("pool-0/l2-0", time=1.0)
    membership.recover("pool-0/l2-0", time=2.0)
    membership.join(ClusterNode(pool="pool-1", role="l1", index=0), time=3.0)
    assert seen == [
        (FAIL, "pool-0/l2-0"),
        (RECOVER, "pool-0/l2-0"),
        (JOIN, "pool-1/l1-0"),
    ]
    assert [e.kind for e in membership.events][-3:] == [FAIL, RECOVER, JOIN]


def test_invalid_transitions_raise():
    membership = Membership.for_pools(["pool-0"], n1=1, n2=1)
    with pytest.raises(ValueError):
        membership.join(ClusterNode(pool="pool-0", role="l1", index=0))
    with pytest.raises(KeyError):
        membership.fail("pool-9/l1-0")
    with pytest.raises(ValueError):
        membership.recover("pool-0/l1-0")  # alive, not failed
    membership.fail("pool-0/l1-0")
    with pytest.raises(ValueError):
        membership.fail("pool-0/l1-0")  # already failed


def test_rebalance_plan_is_deterministic_and_minimal():
    membership = Membership.for_pools(["pool-0", "pool-1", "pool-2"], n1=3, n2=4)
    before = membership.placement(KEYS)
    membership.join_pool("pool-3", n1=3, n2=4)
    after = membership.placement(KEYS)

    plan_a = diff_placements(before, after, reason="join pool-3")
    plan_b = diff_placements(before, after, reason="join pool-3")
    assert plan_a.moves == plan_b.moves
    # Every move targets the new pool, and only a minority of keys move.
    assert all(move.target == "pool-3" for move in plan_a.moves)
    assert 0 < len(plan_a) < len(KEYS) // 2
    assert plan_a.keys_moved == sorted(plan_a.keys_moved)
    assert 0.0 < plan_a.moved_fraction(len(KEYS)) < 0.5


def test_failed_nodes_come_back_in_canonical_order():
    """``failed_nodes`` must be ordered by (pool, role, index) -- not by
    registry insertion order, which depends on join history."""
    membership = Membership.for_pools(["pool-1", "pool-0"], n1=3, n2=4)
    # Fail in deliberately scrambled order across pools and roles.
    for node_id in ["pool-1/l2-3", "pool-0/l2-1", "pool-1/l1-0",
                    "pool-0/l1-2", "pool-0/l2-0"]:
        membership.fail(node_id, time=1.0)
    assert [n.node_id for n in membership.failed_nodes()] == [
        "pool-0/l1-2", "pool-0/l2-0", "pool-0/l2-1",
        "pool-1/l1-0", "pool-1/l2-3",
    ]
    assert [n.node_id for n in membership.failed_nodes("pool-1")] == [
        "pool-1/l1-0", "pool-1/l2-3",
    ]
