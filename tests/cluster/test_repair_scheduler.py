"""RepairScheduler rate limiting, retries and redundancy restoration."""

from __future__ import annotations

import pytest

from repro.cluster.membership import ALIVE, Membership
from repro.cluster.repair import DONE, RepairScheduler
from repro.cluster.router import ObjectRouter
from repro.core.config import LDSConfig
from repro.net.latency import FixedLatencyModel

POOLS = ["pool-0", "pool-1"]


@pytest.fixture
def config() -> LDSConfig:
    return LDSConfig(n1=3, n2=4, f1=1, f2=1)


def build_cluster(config, *, min_interval=5.0, max_concurrent=1,
                  detection_delay=1.0, num_keys=16):
    membership = Membership.for_pools(POOLS, n1=config.n1, n2=config.n2)
    router = ObjectRouter(
        config, membership,
        latency_factory=lambda pool, key: FixedLatencyModel(tau0=1, tau1=1, tau2=10),
    )
    scheduler = RepairScheduler(
        router, min_interval=min_interval, max_concurrent=max_concurrent,
        detection_delay=detection_delay,
    )
    for i in range(num_keys):
        router.write(f"obj-{i}", f"v{i}".encode())
    return router, scheduler


def test_failure_burst_is_rate_limited(config):
    router, scheduler = build_cluster(config, min_interval=5.0, max_concurrent=1)
    victims = router.shards_on_pool("pool-0")
    assert len(victims) >= 3, "need several shards on pool-0 for a meaningful burst"
    router.membership.fail("pool-0/l2-0", time=0.0)

    times = scheduler.scheduled_times()
    assert len(times) == len(victims)
    # With one slot and min_interval=5, consecutive repairs are >= 5 apart.
    for earlier, later in zip(times, times[1:]):
        assert later - earlier >= 5.0 - 1e-9
    # And nothing starts before the detection delay.
    assert times[0] >= 1.0


def test_concurrent_slots_raise_the_repair_rate(config):
    router, scheduler = build_cluster(config, min_interval=5.0, max_concurrent=2)
    victims = router.shards_on_pool("pool-0")
    router.membership.fail("pool-0/l2-0", time=0.0)
    times = scheduler.scheduled_times()
    assert len(times) == len(victims)
    # At most two repairs may start within any window shorter than 5 units.
    for index in range(len(times) - 2):
        assert times[index + 2] - times[index] >= 5.0 - 1e-9
    # But strictly more than one per window actually happens (both slots used).
    assert any(later - earlier < 5.0 for earlier, later in zip(times, times[1:]))


def test_repair_restores_full_redundancy_in_the_background(config):
    router, scheduler = build_cluster(config)
    victims = router.shards_on_pool("pool-0")
    router.membership.fail("pool-0/l2-0", time=0.0)
    for shard in victims:
        assert shard.system.alive_l2_count() == config.n2 - 1
    router.run_until_idle()
    assert scheduler.stats.repairs_completed == len(victims)
    assert scheduler.outstanding_repairs() == 0
    for shard in victims:
        assert shard.system.alive_l2_count() == config.n2
    # The scheduler reports the node healthy again once every shard is whole.
    assert router.membership.node("pool-0/l2-0").status == ALIVE
    # Repaired values are still readable and the execution stays atomic.
    for shard in victims:
        key = shard.key
        index = int(key.split("-")[1])
        assert router.read(key).value == f"v{index}".encode()
    assert router.check_atomicity() is None


def test_repair_reports_download_costs(config):
    router, scheduler = build_cluster(config, num_keys=8)
    victims = router.shards_on_pool("pool-0")
    router.membership.fail("pool-0/l2-0", time=0.0)
    router.run_until_idle()
    reports = scheduler.reports()
    assert len(reports) == len(victims)
    for _key, report in reports:
        assert report.repaired_index == 0
        # MBR repair downloads d * beta / B of the object per rebuild.
        assert report.download_fraction > 0
    assert scheduler.stats.total_download_fraction == pytest.approx(
        sum(report.download_fraction for _key, report in reports)
    )


def test_failure_with_no_shards_recovers_immediately(config):
    membership = Membership.for_pools(POOLS, n1=config.n1, n2=config.n2)
    router = ObjectRouter(config, membership)
    RepairScheduler(router)
    membership.fail("pool-0/l2-0", time=0.0)
    assert membership.node("pool-0/l2-0").status == ALIVE


def test_shard_created_on_degraded_pool_gets_repaired(config):
    """A shard lazily created after the failure must not stay degraded."""
    router, scheduler = build_cluster(config, num_keys=4)
    router.membership.fail("pool-0/l2-0", time=0.0)
    late_key = next(k for k in (f"late-{i}" for i in range(100))
                    if router.membership.pool_for(k) == "pool-0")
    router.write(late_key, b"late arrival")
    router.run_until_idle()
    shard = router.shards[late_key]
    assert shard.system.alive_l2_count() == config.n2
    assert router.membership.node("pool-0/l2-0").status == ALIVE
    assert scheduler.outstanding_repairs() == 0
    assert router.read(late_key).value == b"late arrival"


def test_removing_a_pool_with_pending_repairs_does_not_crash(config):
    """recover() must tolerate nodes that left while repairs were in flight."""
    from repro.cluster.deployment import ShardedCluster
    cluster = ShardedCluster(config, ["pool-0", "pool-1"])
    for i in range(8):
        cluster.write(f"obj-{i}", f"v{i}".encode())
    victims = cluster.router.shards_on_pool("pool-0")
    assert victims
    cluster.fail_node("pool-0/l2-0", time=0.0)
    # Drain the pool before the scheduled repairs ran: the drain executes
    # them, and the last one must not try to recover a node that has left.
    cluster.remove_pool("pool-0")
    for i in range(8):
        assert cluster.read(f"obj-{i}").value == f"v{i}".encode()
    assert cluster.check_atomicity() is None


def test_tasks_complete_even_with_inflight_offloads(config):
    """A failure right after a burst of writes still converges via retries."""
    membership = Membership.for_pools(POOLS, n1=config.n1, n2=config.n2)
    router = ObjectRouter(
        config, membership,
        latency_factory=lambda pool, key: FixedLatencyModel(tau0=1, tau1=1, tau2=10),
    )
    scheduler = RepairScheduler(router, min_interval=2.0, detection_delay=0.5)
    handles = [router.invoke_write(f"obj-{i}", bytes([i + 1]) * 4)
               for i in range(6)]
    router.flush()  # invoked but nothing has executed yet
    membership.fail("pool-0/l2-1", time=0.0)
    router.run_until_idle()
    assert all(router.result(handle) is not None for handle in handles)
    assert all(task.status == DONE for task in scheduler.tasks)
    for shard in router.shards_on_pool("pool-0"):
        assert shard.system.alive_l2_count() == config.n2


def test_gave_up_dispatch_releases_slot_and_counts(config):
    """Regression: a dispatch-time give-up must neither book a rate-limiter
    slot (which would push every later repair out by min_interval) nor be
    dropped from the gave_up statistic."""
    from repro.cluster.repair import GAVE_UP, RepairTask

    router, scheduler = build_cluster(config, min_interval=50.0)
    ghost = RepairTask(key="no-such-key", node_id="pool-0/l2-0", l2_index=0,
                       ready_at=1.0)
    scheduler.tasks.append(ghost)
    scheduler.stats.tasks_created += 1
    scheduler._outstanding["pool-0/l2-0"] = 1
    scheduler._dispatch(ghost)
    assert ghost.status == GAVE_UP
    assert ghost.scheduled_at is None, "a never-run task must not hold a slot time"
    assert scheduler.stats.gave_up == 1
    # The slot was not consumed: the first real repair of the same node
    # still starts right after detection, not min_interval later.
    router.membership.fail("pool-0/l2-0", time=0.0)
    times = scheduler.scheduled_times()
    assert times and times[0] < 50.0
