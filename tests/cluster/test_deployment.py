"""ShardedCluster facade and keyed workload integration."""

from __future__ import annotations

import pytest

from repro import (
    KeyedWorkloadRunner,
    LDSConfig,
    ShardedCluster,
    WorkloadGenerator,
    ZipfKeySampler,
)


@pytest.fixture
def cluster() -> ShardedCluster:
    config = LDSConfig(n1=3, n2=4, f1=1, f2=1)
    return ShardedCluster(config, [f"pool-{i}" for i in range(3)])


def test_facade_drives_keyed_operations(cluster):
    cluster.write("obj-0", b"hello")
    assert cluster.read("obj-0").value == b"hello"
    assert cluster.communication_cost > 0
    assert "pools=3" in cluster.describe()


def test_zipf_workload_end_to_end(cluster):
    keys = [f"obj-{i}" for i in range(24)]
    generator = WorkloadGenerator(seed=3, client_spacing=60.0)
    workload = generator.zipf_keyed(keys, num_operations=80,
                                    write_fraction=0.5, duration=300.0, s=1.1)
    report = KeyedWorkloadRunner(cluster.router).run(workload)
    assert report.is_atomic
    assert report.incomplete_operations == 0
    assert report.write_latency.count + report.read_latency.count == 80
    assert report.total_communication_cost > 0
    assert cluster.router_stats.operations_flushed == 80


def test_zipf_sampler_skews_toward_low_ranks():
    keys = [f"obj-{i}" for i in range(50)]
    sampler = ZipfKeySampler(keys, s=1.4, seed=5)
    counts = sampler.frequencies(4000)
    top = counts["obj-0"]
    tail = sum(counts[f"obj-{i}"] for i in range(40, 50)) / 10
    assert top > 8 * max(tail, 1)


def test_keyed_runner_rejects_keyless_operations(cluster):
    generator = WorkloadGenerator(seed=1)
    workload = generator.sequential(num_writes=1, num_reads=1)
    with pytest.raises(ValueError, match="carry a key"):
        KeyedWorkloadRunner(cluster.router).run(workload)


def test_failure_and_pool_growth_scenario(cluster):
    config = cluster.config
    keys = [f"obj-{i}" for i in range(18)]
    for index, key in enumerate(keys):
        cluster.write(key, f"v{index}".encode())

    # One back-end node fails; the background scheduler repairs everything.
    cluster.fail_node("pool-0/l2-0", time=0.0)
    cluster.run_until_idle()
    for shard in cluster.router.shards_on_pool("pool-0"):
        assert shard.system.alive_l2_count() == config.n2
    assert cluster.node("pool-0/l2-0").status == "alive"

    # Then the cluster grows; shards migrate and values survive.
    plan = cluster.add_pool("pool-3")
    assert plan.moves
    for index, key in enumerate(keys):
        assert cluster.read(key).value == f"v{index}".encode()
    assert cluster.check_atomicity() is None
    counts = cluster.shard_counts()
    assert counts.get("pool-3", 0) == len(
        [m for m in plan.moves if m.target == "pool-3"]
    )
