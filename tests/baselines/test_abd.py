"""Tests for the ABD replicated atomic register baseline."""

import pytest

from repro.baselines.abd import ABDSystem
from repro.consistency.linearizability import LinearizabilityChecker, check_atomicity_by_tags
from repro.net.latency import BoundedLatencyModel, FixedLatencyModel


def build(n=5, **kwargs):
    return ABDSystem(n=n, latency_model=kwargs.pop("latency_model", FixedLatencyModel()),
                     num_writers=kwargs.pop("num_writers", 2),
                     num_readers=kwargs.pop("num_readers", 2), **kwargs)


class TestBasics:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ABDSystem(n=0)
        with pytest.raises(ValueError):
            ABDSystem(n=4, f=2)

    def test_read_initial_value(self):
        system = build()
        assert system.read().value == b"\x00"

    def test_write_then_read(self):
        system = build()
        system.write(b"replicated value")
        assert system.read().value == b"replicated value"

    def test_sequential_writes_overwrite(self):
        system = build()
        for index in range(3):
            system.write(f"v{index}".encode())
        assert system.read().value == b"v2"

    def test_two_writers_get_distinct_increasing_tags(self):
        system = build()
        first = system.write(b"a", writer=0)
        second = system.write(b"b", writer=1)
        assert second.tag > first.tag

    def test_history_is_atomic(self):
        system = build(latency_model=BoundedLatencyModel(seed=3))
        system.invoke_write(b"x", writer=0, at=0.0)
        system.invoke_write(b"y", writer=1, at=0.5)
        system.invoke_read(reader=0, at=1.0)
        system.invoke_read(reader=1, at=30.0)
        system.run_until_idle()
        history = system.history().complete()
        assert check_atomicity_by_tags(history) is None
        assert LinearizabilityChecker().check(history) is None


class TestFaultTolerance:
    def test_operations_survive_f_crashes(self):
        system = build(n=5)
        system.crash_server(0)
        system.crash_server(3)
        system.write(b"still works")
        assert system.read().value == b"still works"

    def test_crash_mid_operation(self):
        system = build(n=5)
        system.crash_server(1, at=1.5)
        result = system.write(b"concurrent crash")
        assert result.kind == "write"
        assert system.read().value == b"concurrent crash"


class TestCosts:
    def test_write_cost_is_n(self):
        system = build(n=5)
        result = system.write(b"value")
        assert system.operation_cost(result.op_id) == pytest.approx(5.0)

    def test_read_cost_is_up_to_2n(self):
        system = build(n=5)
        system.write(b"value")
        result = system.read()
        cost = system.operation_cost(result.op_id)
        assert 5.0 <= cost <= 10.0 + 1e-9

    def test_storage_cost_is_n(self):
        system = build(n=7)
        system.write(b"value")
        assert system.storage_cost == pytest.approx(7.0)

    def test_costs_grow_linearly_with_n(self):
        small = build(n=4)
        large = build(n=8)
        cost_small = small.operation_cost(small.write(b"v").op_id)
        cost_large = large.operation_cost(large.write(b"v").op_id)
        assert cost_large == pytest.approx(2 * cost_small)
