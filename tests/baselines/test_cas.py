"""Tests for the single-layer coded atomic register (CAS) baseline."""

import pytest

from repro.baselines.cas import CASSystem
from repro.consistency.linearizability import LinearizabilityChecker, check_atomicity_by_tags
from repro.net.latency import BoundedLatencyModel, FixedLatencyModel


def build(n=6, k=3, **kwargs):
    return CASSystem(n=n, k=k, latency_model=kwargs.pop("latency_model", FixedLatencyModel()),
                     num_writers=kwargs.pop("num_writers", 2),
                     num_readers=kwargs.pop("num_readers", 2), **kwargs)


class TestBasics:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CASSystem(n=4, k=5)
        with pytest.raises(ValueError):
            CASSystem(n=4, k=0)

    def test_quorum_size(self):
        system = build(n=6, k=3)
        assert system.quorum == 5  # ceil((6 + 3) / 2)
        assert system.f == 1

    def test_read_initial_value(self):
        assert build().read().value == b"\x00"

    def test_write_then_read(self):
        system = build()
        system.write(b"coded single layer value")
        assert system.read().value == b"coded single layer value"

    def test_sequence_of_writes(self):
        system = build()
        for index in range(4):
            system.write(f"version-{index}".encode())
            assert system.read().value == f"version-{index}".encode()

    def test_two_writers(self):
        system = build()
        system.write(b"first", writer=0)
        system.write(b"second", writer=1)
        assert system.read().value == b"second"

    def test_history_is_atomic(self):
        system = build(latency_model=BoundedLatencyModel(seed=5))
        system.invoke_write(b"x", writer=0, at=0.0)
        system.invoke_read(reader=0, at=1.0)
        system.invoke_write(b"y", writer=1, at=40.0)
        system.invoke_read(reader=1, at=80.0)
        system.run_until_idle()
        history = system.history().complete()
        assert check_atomicity_by_tags(history) is None
        assert LinearizabilityChecker().check(history) is None


class TestFaultToleranceAndStorage:
    def test_tolerates_declared_failures(self):
        system = build(n=7, k=3)  # quorum 5, tolerates 2 crashes
        system.crash_server(0)
        system.crash_server(6)
        system.write(b"resilient")
        assert system.read().value == b"resilient"

    def test_storage_cost_is_fraction_of_replication(self):
        system = build(n=6, k=3)
        system.write(b"space efficient")
        # One finalized version: 6 elements of size 1/3 each = 2.
        assert system.storage_cost == pytest.approx(2.0)
        assert system.storage_cost < 6.0  # replication would cost n

    def test_garbage_collection_bounds_storage(self):
        system = build(n=6, k=3, gc_depth=2)
        for index in range(5):
            system.write(bytes([index + 1]) * 3)
        system.run_until_idle()
        assert system.storage_cost <= 2 * 6 / 3 + 1e-9

    def test_write_cost_scales_with_n_over_k(self):
        system = build(n=6, k=3)
        result = system.write(b"value")
        # pre-write sends n elements of size 1/k.
        assert system.operation_cost(result.op_id) == pytest.approx(6 / 3)

    def test_read_cost_smaller_than_abd(self):
        system = build(n=6, k=3)
        system.write(b"value")
        read_cost = system.operation_cost(system.read().op_id)
        assert read_cost <= 6 / 3 + 1e-9  # at most n coded elements of size 1/k
