"""Property-based tests of the code layer: any-k decodability and exact repair."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codes.layered import LayeredCode
from repro.codes.product_matrix import ProductMatrixMBRCode, ProductMatrixMSRCode
from repro.codes.reed_solomon import ReedSolomonCode

payloads = st.binary(min_size=0, max_size=200)


@st.composite
def rs_code_and_subset(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    k = draw(st.integers(min_value=1, max_value=n))
    subset = draw(st.permutations(list(range(n))))
    return ReedSolomonCode(n, k), list(subset)[:k]


@st.composite
def mbr_code_and_subsets(draw):
    n = draw(st.integers(min_value=4, max_value=10))
    d = draw(st.integers(min_value=2, max_value=n - 1))
    k = draw(st.integers(min_value=1, max_value=d))
    code = ProductMatrixMBRCode(n=n, k=k, d=d)
    order = draw(st.permutations(list(range(n))))
    return code, list(order)


class TestReedSolomonProperties:
    @settings(max_examples=40, deadline=None)
    @given(rs_code_and_subset(), payloads)
    def test_any_k_subset_decodes(self, code_subset, payload):
        code, subset = code_subset
        elements = code.encode(payload)
        chosen = [elements[i] for i in subset]
        assert code.decode(chosen) == payload

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=8), payloads)
    def test_storage_overhead_matches_n_over_k(self, k, payload):
        code = ReedSolomonCode(2 * k, k)
        elements = code.encode(payload)
        stored = sum(len(element.data) for element in elements)
        payload_symbols = code.stripe_count(len(payload)) * code.block_size
        assert stored == payload_symbols * 2  # n / k = 2


class TestProductMatrixProperties:
    @settings(max_examples=25, deadline=None)
    @given(mbr_code_and_subsets(), payloads)
    def test_mbr_decode_from_any_k_and_repair_any_node(self, code_order, payload):
        code, order = code_order
        elements = code.encode(payload)
        # Decodability from an arbitrary k-subset.
        decoders = order[: code.k]
        assert code.decode([elements[i] for i in decoders]) == payload
        # Exact repair of an arbitrary node from the next d distinct helpers.
        failed = order[-1]
        helpers = [i for i in order if i != failed][: code.d]
        helper_data = {i: code.helper_data(i, elements[i].data, failed) for i in helpers}
        assert code.repair(failed, helper_data).data == elements[failed].data

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=5), payloads)
    def test_msr_roundtrip_and_repair(self, k, payload):
        code = ProductMatrixMSRCode(n=2 * k, k=k)
        elements = code.encode(payload)
        assert code.decode(elements[k - 1 : 2 * k - 1]) == payload
        failed = 0
        helpers = {i: code.helper_data(i, elements[i].data, failed)
                   for i in range(1, code.d + 1)}
        assert code.repair(failed, helpers).data == elements[failed].data

    @settings(max_examples=25, deadline=None)
    @given(st.data(), payloads)
    def test_mbr_helper_data_is_helper_set_independent(self, data, payload):
        code = ProductMatrixMBRCode(n=8, k=3, d=4)
        elements = code.encode(payload)
        failed = data.draw(st.integers(min_value=0, max_value=7))
        helper = data.draw(st.integers(min_value=0, max_value=7).filter(lambda i: i != failed))
        once = code.helper_data(helper, elements[helper].data, failed)
        again = code.helper_data(helper, elements[helper].data, failed)
        assert once == again


class TestLayeredCodeProperties:
    @settings(max_examples=20, deadline=None)
    @given(payloads, st.integers(min_value=0, max_value=4))
    def test_backend_write_then_regenerate_then_client_decode(self, payload, rotation):
        code = LayeredCode(n1=5, n2=6, k=3, d=4)
        backend = code.encode_for_backend(payload)
        l2_choices = [(i + rotation) % 6 for i in range(4)]
        l1_elements = {}
        for l1_server in range(3):
            helpers = {l2: code.helper_data(l2, backend[l2], l1_server) for l2 in l2_choices}
            l1_elements[l1_server] = code.regenerate_l1_element(l1_server, helpers).data
        assert code.decode_from_l1(l1_elements) == payload

    @settings(max_examples=20, deadline=None)
    @given(payloads)
    def test_backend_alone_can_always_rebuild_the_value(self, payload):
        code = LayeredCode(n1=5, n2=6, k=3, d=4)
        backend = code.encode_for_backend(payload)
        subset = {i: backend[i].data for i in (1, 3, 5)}
        assert code.decode_from_backend(subset) == payload
