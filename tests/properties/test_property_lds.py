"""Property-based tests of LDS executions: liveness + atomicity on random schedules.

These are the Theorem IV.8 / IV.9 checks: for randomly generated
invocation schedules, latency samples and crash patterns within the
failure budgets, every operation of a non-faulty client completes and the
resulting history is atomic (checked both with the implementation's tags
and with the tag-free linearizability search).
"""

from hypothesis import given, settings, strategies as st

from repro.consistency.linearizability import LinearizabilityChecker, check_atomicity_by_tags
from repro.core.config import LDSConfig
from repro.core.system import LDSSystem
from repro.core.tags import Tag
from repro.net.latency import BoundedLatencyModel


@st.composite
def schedules(draw):
    """A random schedule of client invocations plus crash times."""
    num_writes = draw(st.integers(min_value=1, max_value=4))
    num_reads = draw(st.integers(min_value=1, max_value=4))
    writes = [
        (draw(st.integers(min_value=0, max_value=1)),            # writer index
         draw(st.floats(min_value=0.0, max_value=150.0)))        # invocation time
        for _ in range(num_writes)
    ]
    reads = [
        (draw(st.integers(min_value=0, max_value=1)),
         draw(st.floats(min_value=0.0, max_value=150.0)))
        for _ in range(num_reads)
    ]
    latency_seed = draw(st.integers(min_value=0, max_value=2**16))
    crash_l1 = draw(st.booleans())
    crash_l2 = draw(st.booleans())
    crash_time = draw(st.floats(min_value=0.0, max_value=150.0))
    return writes, reads, latency_seed, crash_l1, crash_l2, crash_time


def run_schedule(schedule):
    writes, reads, latency_seed, crash_l1, crash_l2, crash_time = schedule
    config = LDSConfig(n1=5, n2=6, f1=1, f2=1)
    system = LDSSystem(config, num_writers=2, num_readers=2,
                       latency_model=BoundedLatencyModel(tau0=1, tau1=1, tau2=5,
                                                         seed=latency_seed))
    # Well-formedness: serialise operations per client by spacing them out.
    next_free = {}
    spacing = 120.0
    for index, (writer, at) in enumerate(writes):
        key = ("w", writer)
        at = max(at, next_free.get(key, 0.0))
        next_free[key] = at + spacing
        system.invoke_write(f"value-{index}".encode(), writer=writer, at=at)
    for reader, at in reads:
        key = ("r", reader)
        at = max(at, next_free.get(key, 0.0))
        next_free[key] = at + spacing
        system.invoke_read(reader=reader, at=at)
    if crash_l1:
        system.crash_l1(2, at=crash_time)
    if crash_l2:
        system.crash_l2(4, at=crash_time)
    system.run_until_idle()
    return system


class TestRandomExecutions:
    @settings(max_examples=25, deadline=None)
    @given(schedules())
    def test_liveness_every_client_operation_completes(self, schedule):
        system = run_schedule(schedule)
        history = system.history()
        assert all(op.is_complete for op in history)

    @settings(max_examples=25, deadline=None)
    @given(schedules())
    def test_atomicity_of_random_executions(self, schedule):
        system = run_schedule(schedule)
        history = system.history().complete()
        assert check_atomicity_by_tags(history) is None

    @settings(max_examples=10, deadline=None)
    @given(schedules())
    def test_tag_free_linearizability_of_random_executions(self, schedule):
        system = run_schedule(schedule)
        history = system.history().complete()
        assert LinearizabilityChecker().check(history) is None

    @settings(max_examples=15, deadline=None)
    @given(schedules())
    def test_server_invariants_hold_at_quiescence(self, schedule):
        system = run_schedule(schedule)
        for server in system.l1_servers:
            if server.crashed:
                continue
            # Lemma IV.2: live values never carry tags below the committed tag.
            for tag, value in server.list_storage.items():
                if value is not None:
                    assert tag >= server.committed_tag
        for server in system.l2_servers:
            if server.crashed:
                continue
            assert server.stored_tag >= Tag.initial()

    @settings(max_examples=15, deadline=None)
    @given(schedules())
    def test_reads_return_values_that_were_actually_written(self, schedule):
        system = run_schedule(schedule)
        history = system.history()
        written = {op.value for op in history.writes()} | {system.config.initial_value}
        for read in history.reads():
            if read.is_complete:
                assert read.value in written
