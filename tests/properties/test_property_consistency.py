"""Property-based tests for tags and the consistency checkers."""

from hypothesis import given, settings, strategies as st

from repro.consistency.history import History, Operation, READ, WRITE
from repro.consistency.linearizability import LinearizabilityChecker, check_atomicity_by_tags
from repro.core.tags import Tag

tag_strategy = st.builds(
    Tag,
    z=st.integers(min_value=0, max_value=20),
    writer_id=st.sampled_from(["", "w-a", "w-b", "w-c"]),
)


class TestTagProperties:
    @given(tag_strategy, tag_strategy)
    def test_total_order_antisymmetry(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1

    @given(tag_strategy, tag_strategy, tag_strategy)
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(tag_strategy, st.sampled_from(["w-a", "w-b"]))
    def test_next_tag_always_dominates(self, tag, writer):
        assert tag.next_tag(writer) > tag

    @given(st.lists(tag_strategy, min_size=1, max_size=20))
    def test_max_is_an_upper_bound(self, tags):
        maximum = max(tags)
        assert all(tag <= maximum for tag in tags)


@st.composite
def sequential_histories(draw):
    """Histories produced by a single client issuing ops one after another.

    By construction these are atomic, so both checkers must accept them.
    """
    length = draw(st.integers(min_value=1, max_value=8))
    operations = []
    time = 0.0
    current_value = b"init"
    current_tag = Tag.initial()
    for index in range(length):
        duration = draw(st.floats(min_value=0.1, max_value=5.0))
        is_write = draw(st.booleans())
        if is_write:
            current_value = bytes([index + 1])
            current_tag = current_tag.next_tag("w")
            operations.append(Operation(
                op_id=f"op{index}", client_id="client", kind=WRITE, value=current_value,
                invoked_at=time, responded_at=time + duration, tag=current_tag,
            ))
        else:
            operations.append(Operation(
                op_id=f"op{index}", client_id="client", kind=READ, value=current_value,
                invoked_at=time, responded_at=time + duration, tag=current_tag,
            ))
        time += duration + draw(st.floats(min_value=0.01, max_value=2.0))
    return History(operations, initial_value=b"init")


class TestCheckerProperties:
    @settings(max_examples=50, deadline=None)
    @given(sequential_histories())
    def test_sequential_histories_are_always_accepted(self, history):
        assert check_atomicity_by_tags(history) is None
        assert LinearizabilityChecker().check(history) is None

    @settings(max_examples=50, deadline=None)
    @given(sequential_histories())
    def test_corrupting_a_read_value_is_always_detected_by_tag_checker(self, history):
        reads = [op for op in history.operations if op.kind == READ and op.tag != Tag.initial()]
        if not reads:
            return
        corrupted_ops = []
        target = reads[-1].op_id
        for op in history.operations:
            if op.op_id == target:
                corrupted_ops.append(Operation(
                    op_id=op.op_id, client_id=op.client_id, kind=op.kind,
                    value=b"\xff\xfe never written", invoked_at=op.invoked_at,
                    responded_at=op.responded_at, tag=op.tag,
                ))
            else:
                corrupted_ops.append(op)
        corrupted = History(corrupted_ops, initial_value=b"init")
        assert check_atomicity_by_tags(corrupted) is not None
