"""Property-based tests of the GF(2^8) field axioms and matrix algebra."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.gf.gf256 import GF256
from repro.gf.matrix import GFMatrix

elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


class TestFieldAxioms:
    @given(elements, elements)
    def test_addition_commutative(self, a, b):
        assert GF256.add(a, b) == GF256.add(b, a)

    @given(elements, elements, elements)
    def test_addition_associative(self, a, b, c):
        assert GF256.add(GF256.add(a, b), c) == GF256.add(a, GF256.add(b, c))

    @given(elements, elements)
    def test_multiplication_commutative(self, a, b):
        assert GF256.mul(a, b) == GF256.mul(b, a)

    @given(elements, elements, elements)
    def test_multiplication_associative(self, a, b, c):
        assert GF256.mul(GF256.mul(a, b), c) == GF256.mul(a, GF256.mul(b, c))

    @given(elements, elements, elements)
    def test_distributivity(self, a, b, c):
        assert GF256.mul(a, GF256.add(b, c)) == GF256.add(GF256.mul(a, b), GF256.mul(a, c))

    @given(nonzero_elements)
    def test_multiplicative_inverse(self, a):
        assert GF256.mul(a, GF256.inv(a)) == 1

    @given(elements, nonzero_elements)
    def test_division_is_multiplication_by_inverse(self, a, b):
        assert GF256.div(a, b) == GF256.mul(a, GF256.inv(b))

    @given(nonzero_elements, st.integers(min_value=0, max_value=600))
    def test_pow_respects_group_order(self, a, exponent):
        assert GF256.pow(a, exponent) == GF256.pow(a, exponent % 255 + 255)


class TestVectorisedConsistency:
    @given(st.lists(elements, min_size=1, max_size=40), elements)
    def test_scale_vec_matches_scalar_mul(self, vector, scalar):
        expected = [GF256.mul(scalar, value) for value in vector]
        assert list(GF256.scale_vec(scalar, vector)) == expected

    @given(st.lists(st.tuples(elements, elements), min_size=1, max_size=40))
    def test_mul_vec_matches_scalar_mul(self, pairs):
        a = [p[0] for p in pairs]
        b = [p[1] for p in pairs]
        expected = [GF256.mul(x, y) for x, y in pairs]
        assert list(GF256.mul_vec(a, b)) == expected


@st.composite
def invertible_matrices(draw, max_size=5):
    size = draw(st.integers(min_value=1, max_value=max_size))
    attempts = 0
    while True:
        data = draw(
            st.lists(st.lists(elements, min_size=size, max_size=size),
                     min_size=size, max_size=size)
        )
        matrix = GFMatrix(np.array(data, dtype=np.uint8))
        if matrix.is_invertible():
            return matrix
        attempts += 1
        if attempts > 10:
            # Fall back to a guaranteed invertible perturbation of the identity.
            base = np.eye(size, dtype=np.uint8)
            return GFMatrix(base)


class TestMatrixProperties:
    @settings(max_examples=30, deadline=None)
    @given(invertible_matrices())
    def test_inverse_roundtrip(self, matrix):
        assert matrix @ matrix.inverse() == GFMatrix.identity(matrix.rows)
        assert matrix.inverse() @ matrix == GFMatrix.identity(matrix.rows)

    @settings(max_examples=30, deadline=None)
    @given(invertible_matrices(), st.lists(elements, min_size=1, max_size=5))
    def test_solve_finds_the_preimage(self, matrix, vector):
        vector = (vector * matrix.cols)[: matrix.cols]
        rhs = matrix.matvec(vector)
        solution = matrix.solve(rhs)
        assert np.array_equal(matrix.matvec(solution), np.asarray(rhs, dtype=np.uint8))

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=1, max_value=6))
    def test_rank_never_exceeds_dimensions(self, rows, cols):
        matrix = GFMatrix((np.arange(rows * cols) % 256).astype(np.uint8).reshape(rows, cols))
        assert matrix.rank() <= min(rows, cols)
